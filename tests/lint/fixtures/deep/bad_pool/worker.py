"""Deep-corpus: module-global writes reachable from the pool dispatch.

``classify`` runs under ``_pool_chunk_entry`` and both rebinds a
module global and mutates a module-level memo dict (pool-global-write,
twice).  ``offline_report`` does the same writes but is unreachable
from the dispatch, so it stays clean.
"""

_MEMO = {}
_COUNT = 0


def _pool_chunk_entry(chunk):
    return [classify(item) for item in chunk]


def classify(item):
    global _COUNT
    _COUNT += 1
    _MEMO[item] = item * 2
    return _MEMO[item]


def offline_report():
    global _COUNT
    _COUNT = 0
    return dict(_MEMO)
