"""Deep-corpus: a run function with an unkeyed run-affecting knob.

``turbo`` flows (through ``window``) into the ``TcpConfig`` sink but
is never forwarded from a spec field by ``run_unit`` and carries no
waiver — cache-key-unkeyed-param.
"""


class TcpConfig:
    def __init__(self, window):
        self.window = window


def run_experiment(mode, jitter=0.0, turbo=False, seed=0):
    window = 8 if turbo else 4
    return TcpConfig(window)
