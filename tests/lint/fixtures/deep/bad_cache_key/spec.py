"""Deep-corpus: a spec with an unkeyed field and a stale key entry.

``jitter`` is a real dataclass field missing from ``CACHE_KEY_FIELDS``
(cache-key-missing); ``ghost`` is a key entry matching no field
(cache-key-stale); ``seeds`` is covered by the default waiver.
"""

import dataclasses

CACHE_KEY_FIELDS = ("mode", "ghost")


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    mode: str = "demo"
    jitter: float = 0.0
    seeds: tuple = (0,)
