"""Deep-corpus: the forwarding layer omits ``turbo`` entirely."""

from .runner import run_experiment


def run_unit(spec, seed):
    return run_experiment(spec.mode, jitter=spec.jitter, seed=seed)
