"""Deep-corpus: RNG seed origins and shared streams.

``fixed_stream`` seeds from a constant and ``untraceable`` from a
value no caller ties to a seed (rng-seed-origin, twice); ``shared``
hands one RNG to two consumers (rng-shared-stream).  ``private`` is
the sanctioned pattern: one offset stream per consumer.
"""

import random


def make_link(rng):
    return rng.random()


def fixed_stream():
    rng = random.Random(1234)
    return rng.random()


def untraceable(level):
    rng = random.Random(level)
    return rng.random()


def shared(seed):
    rng = random.Random(seed)
    first = make_link(rng)
    second = make_link(rng)
    return first + second


def private(seed):
    one = make_link(random.Random(seed + 1))
    two = make_link(random.Random(seed + 2))
    return one + two


def drive():
    return untraceable(3)
