"""Fixture: hot-path class without __slots__ (lint with this file's
name added to the hot-path list, e.g. ``--hot-path bad_missing_slots``).
"""


class PerPacketState:
    def __init__(self, seq):
        self.seq = seq
