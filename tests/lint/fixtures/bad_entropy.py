"""Fixture: draws OS entropy."""

import os


def nonce():
    return os.urandom(8)
