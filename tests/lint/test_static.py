"""The determinism linter: fixture corpus, pragmas, self-check."""

import pathlib

import pytest

from repro.lint import (DEFAULT_CONFIG, LintConfig, LintError,
                        lint_file, lint_paths, lint_source)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: fixture file -> the single rule it must trigger.
CORPUS = {
    "bad_wall_clock.py": "wall-clock",
    "bad_unseeded_random.py": "unseeded-random",
    "bad_entropy.py": "entropy-source",
    "bad_set_iteration.py": "set-iteration",
    "bad_float_clock_compare.py": "float-clock-compare",
    "bad_mutable_default.py": "mutable-default",
    "bad_missing_slots.py": "slots-hot-path",
    "bad_pool_outside_matrix.py": "pool-outside-matrix",
}


def _config_for(filename):
    if filename == "bad_missing_slots.py":
        return DEFAULT_CONFIG.with_hot_paths(["bad_missing_slots"])
    return DEFAULT_CONFIG


@pytest.mark.parametrize("filename,rule", sorted(CORPUS.items()))
def test_fixture_triggers_exactly_one_rule(filename, rule):
    findings = lint_file(FIXTURES / filename, _config_for(filename))
    assert [f.rule for f in findings] == [rule]
    finding = findings[0]
    assert finding.line > 0
    assert finding.hint
    assert f"[{rule}]" in finding.format()


def test_corpus_covers_every_rule():
    from repro.lint import ALL_RULES
    assert set(CORPUS.values()) == set(ALL_RULES)


def test_src_lints_clean():
    """The repository's own source tree carries zero findings."""
    assert lint_paths([SRC]) == []


def test_pragma_waives_rule_on_same_line():
    source = "import time\nt = time.time()  # repro-lint: allow(wall-clock)\n"
    assert lint_source(source) == []


def test_pragma_waives_rule_on_previous_line():
    source = ("import time\n"
              "# repro-lint: allow(wall-clock)\n"
              "t = time.time()\n")
    assert lint_source(source) == []


def test_pragma_star_waives_everything():
    source = "import os\nn = os.urandom(4)  # repro-lint: allow(*)\n"
    assert lint_source(source) == []


def test_pragma_for_other_rule_does_not_waive():
    source = "import time\nt = time.time()  # repro-lint: allow(nagle)\n"
    assert [f.rule for f in lint_source(source)] == ["wall-clock"]


def test_import_alias_resolution():
    source = "import time as clock\nt = clock.time()\n"
    assert [f.rule for f in lint_source(source)] == ["wall-clock"]


def test_from_import_resolution():
    source = "from time import time\nt = time()\n"
    assert [f.rule for f in lint_source(source)] == ["wall-clock"]


def test_local_name_is_not_flagged():
    """A local variable named ``time`` is not the stdlib module."""
    source = "def f(time):\n    return time.time()\n"
    assert lint_source(source) == []


def test_seeded_random_is_clean():
    source = "import random\nrng = random.Random(42)\nx = rng.random()\n"
    assert lint_source(source) == []


def test_unseeded_random_instance_flagged():
    source = "import random\nrng = random.Random()\n"
    assert [f.rule for f in lint_source(source)] == ["unseeded-random"]


def test_sorted_set_iteration_is_clean():
    source = "for h in sorted(set(hosts)):\n    pass\n"
    assert lint_source(source) == []


def test_allowlist_exempts_file():
    config = LintConfig(allowlist={"wall-clock": ("timing/bench.py",)})
    source = "import time\nt = time.time()\n"
    assert lint_source(source, "pkg/timing/bench.py", config) == []
    assert len(lint_source(source, "pkg/other.py", config)) == 1


def test_pool_via_get_context_flagged():
    source = ("import multiprocessing\n"
              "p = multiprocessing.get_context('fork').Pool(2)\n")
    assert [f.rule for f in lint_source(source)] == ["pool-outside-matrix"]


def test_matrix_runner_pool_is_allowlisted():
    source = "import multiprocessing\np = multiprocessing.Pool(2)\n"
    path = "src/repro/matrix/runner.py"
    assert lint_source(source, path, DEFAULT_CONFIG) == []


def test_dataclass_exempt_from_slots_rule():
    config = LintConfig(hot_path_modules=("hot.py",))
    source = ("import dataclasses\n"
              "@dataclasses.dataclass\n"
              "class Record:\n"
              "    x: int = 0\n")
    assert lint_source(source, "hot.py", config) == []


def test_exception_exempt_from_slots_rule():
    config = LintConfig(hot_path_modules=("hot.py",))
    source = "class BadThing(RuntimeError):\n    pass\n"
    assert lint_source(source, "hot.py", config) == []


def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError):
        lint_source("def broken(:\n")


def test_missing_path_raises_lint_error():
    with pytest.raises(LintError):
        lint_paths(["no/such/path_xyz"])


def test_findings_sorted_and_structured():
    source = ("import time, os\n"
              "b = os.urandom(2)\n"
              "a = time.time()\n")
    findings = lint_source(source, "m.py")
    assert [f.line for f in findings] == [2, 3]
    payload = findings[0].to_dict()
    assert payload["rule"] == "entropy-source"
    assert payload["path"] == "m.py"
