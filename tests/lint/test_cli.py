"""The ``python -m repro lint`` verb: exit codes, JSON, trace mode."""

import json
import pathlib

import pytest

from repro.__main__ import main

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN_DIR = REPO / "tests" / "simnet" / "fixtures"


def test_lint_src_exits_clean(capsys):
    assert main(["lint", str(REPO / "src" / "repro")]) == 0
    assert "clean" in capsys.readouterr().err


def test_lint_fixture_corpus_exits_dirty(capsys):
    code = main(["lint", str(FIXTURES)])
    assert code == 1
    out = capsys.readouterr().out
    for rule in ("wall-clock", "unseeded-random", "entropy-source",
                 "set-iteration", "float-clock-compare",
                 "mutable-default"):
        assert f"[{rule}]" in out


def test_hot_path_flag_activates_slots_rule(capsys):
    target = str(FIXTURES / "bad_missing_slots.py")
    assert main(["lint", target]) == 0
    assert main(["lint", "--hot-path", "bad_missing_slots",
                 target]) == 1
    assert "[slots-hot-path]" in capsys.readouterr().out


def test_json_output_structure(capsys):
    code = main(["lint", "--json", str(FIXTURES / "bad_wall_clock.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["finding_count"] == 1
    assert payload["findings"][0]["rule"] == "wall-clock"
    assert payload["traces"] == {}


def test_sanitize_traces_golden(capsys):
    traces = sorted(GOLDEN_DIR.glob("*.trace"))
    code = main(["lint", str(REPO / "src" / "repro"),
                 "--sanitize-traces"] + [str(t) for t in traces])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count(": clean") == len(traces)


def test_sanitize_traces_rejects_corrupt(tmp_path, capsys):
    golden = sorted(GOLDEN_DIR.glob("*.trace"))[0]
    lines = golden.read_text(encoding="utf-8").strip().splitlines()
    lines[0], lines[1] = lines[1], lines[0]
    corrupt = tmp_path / "corrupt.trace"
    corrupt.write_text("\n".join(lines) + "\n", encoding="utf-8")
    code = main(["lint", str(REPO / "src" / "repro"),
                 "--json", "--sanitize-traces", str(corrupt)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violation_count"] > 0
    rules = {v["rule"] for v in payload["traces"][str(corrupt)]}
    assert "handshake-order" in rules


DEEP_FIXTURES = FIXTURES / "deep"


def test_deep_flag_exits_dirty_on_corpus(capsys):
    code = main(["lint", "--deep", str(DEEP_FIXTURES / "bad_rng")])
    assert code == 1
    out = capsys.readouterr().out
    assert "[rng-seed-origin]" in out
    assert "[rng-shared-stream]" in out


def test_deep_src_clean_under_committed_baseline(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    code = main(["lint", "--deep", "--baseline", "DEEP_BASELINE.json",
                 "src/repro"])
    assert code == 0
    assert "clean" in capsys.readouterr().err


def test_write_baseline_then_reuse_then_stale(tmp_path, capsys):
    target = str(DEEP_FIXTURES / "bad_pool")
    base = tmp_path / "baseline.json"
    assert main(["lint", "--deep", "--write-baseline", str(base),
                 target]) == 0
    # --baseline alone implies the deep passes.
    assert main(["lint", "--baseline", str(base), target]) == 0
    payload = json.loads(base.read_text(encoding="utf-8"))
    payload["findings"].append({"id": "feedface0000",
                                "rule": "pool-global-write",
                                "path": "gone.py"})
    base.write_text(json.dumps(payload), encoding="utf-8")
    assert main(["lint", "--baseline", str(base), target]) == 1
    assert "[stale-baseline]" in capsys.readouterr().out


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{", encoding="utf-8")
    code = main(["lint", "--deep", "--baseline", str(bad),
                 str(DEEP_FIXTURES / "bad_pool")])
    assert code == 2
    assert "lint:" in capsys.readouterr().err


def test_missing_baseline_is_usage_error(capsys):
    code = main(["lint", "--deep", "--baseline", "no/such/base.json",
                 str(DEEP_FIXTURES / "bad_pool")])
    assert code == 2
    assert "lint:" in capsys.readouterr().err


def test_deep_json_findings_carry_sorted_stable_ids(capsys):
    code = main(["lint", "--json", "--deep",
                 str(DEEP_FIXTURES / "bad_cache_key")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    findings = payload["findings"]
    assert findings
    for finding in findings:
        int(finding["id"], 16)
        assert len(finding["id"]) == 12
    keys = [(f["path"], f["line"], f["col"], f["rule"])
            for f in findings]
    assert keys == sorted(keys)


def test_missing_lint_path_is_usage_error(capsys):
    assert main(["lint", "no/such/dir_xyz"]) == 2
    assert "lint:" in capsys.readouterr().err


def test_unparsable_trace_is_usage_error(tmp_path, capsys):
    bogus = tmp_path / "bogus.trace"
    bogus.write_text("garbage\n", encoding="utf-8")
    code = main(["lint", str(REPO / "src" / "repro"),
                 "--sanitize-traces", str(bogus)])
    assert code == 2
