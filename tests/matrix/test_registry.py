"""The shared name registry: every axis resolves the same way everywhere."""

import pytest

from repro.core import (HTTP10_MODE, HTTP11_PIPELINED, FIRST_TIME,
                        REVALIDATE)
from repro.core.registry import (MODES, PROFILES, TABLE_CELLS,
                                 UnknownNameError, modes_for_environment,
                                 register_mode, resolve_environment,
                                 resolve_mode, resolve_profile,
                                 resolve_scenario)
from repro.server import APACHE
from repro.simnet import WAN


def test_canonical_names_resolve():
    assert resolve_mode("HTTP/1.0") is HTTP10_MODE
    assert resolve_profile("Apache") is APACHE
    assert resolve_environment("WAN") is WAN
    assert resolve_scenario("first-time") == FIRST_TIME


def test_aliases_and_case_insensitivity():
    assert resolve_mode("pipelined").name == "HTTP/1.1 Pipelined"
    assert resolve_mode("1.0") is HTTP10_MODE
    assert resolve_mode("http/1.1 pipelined") is resolve_mode("pipelined")
    assert resolve_profile("apache") is APACHE
    assert resolve_environment("wan") is WAN
    assert resolve_scenario("reval") == REVALIDATE
    assert resolve_scenario("Revalidate") == REVALIDATE


def test_objects_pass_through_unchanged():
    assert resolve_mode(HTTP11_PIPELINED) is HTTP11_PIPELINED
    assert resolve_profile(APACHE) is APACHE
    assert resolve_environment(WAN) is WAN


@pytest.mark.parametrize("resolver,kind,bogus", [
    (resolve_mode, "mode", "spdy"),
    (resolve_environment, "environment", "satellite"),
    (resolve_profile, "server", "nginx"),
    (resolve_scenario, "scenario", "third-time"),
])
def test_unknown_names_raise_with_choices(resolver, kind, bogus):
    with pytest.raises(UnknownNameError) as excinfo:
        resolver(bogus)
    message = str(excinfo.value)
    assert f"unknown {kind} {bogus!r}" in message
    assert "choose from:" in message


def test_unknown_name_error_is_a_value_error():
    with pytest.raises(ValueError):
        resolve_mode("gopher")


def test_table_cells_cover_tables_4_to_9():
    assert sorted(TABLE_CELLS) == [4, 5, 6, 7, 8, 9]
    assert TABLE_CELLS[4] == ("Jigsaw", "LAN")
    assert TABLE_CELLS[9] == ("Apache", "PPP")
    for server, environment in TABLE_CELLS.values():
        assert server in PROFILES
        assert resolve_environment(environment).name == environment


def test_registry_maps_are_canonical():
    for name, mode in MODES.items():
        assert mode.name == name
    for name, profile in PROFILES.items():
        assert profile.name == name


# ----------------------------------------------------------------------
# The open registration surface (register_mode and friends)
# ----------------------------------------------------------------------
def _unregister(name, aliases):
    from repro.core import registry
    registry.MODES.pop(name, None)
    registry._MODE_ENVIRONMENTS.pop(name, None)
    registry._PAPER_ENVIRONMENTS.pop(name, None)
    for alias in aliases:
        registry.MODE_ALIASES.pop(alias, None)


def test_register_mode_wires_a_new_mode_everywhere():
    from repro.core.modes import ProtocolMode
    from repro.http import HTTP11
    mode = ProtocolMode("HTTP/TEST Gopher++", HTTP11)
    try:
        returned = register_mode(mode, aliases=("gopherpp",),
                                 environments=("LAN",))
        assert returned is mode
        assert resolve_mode("gopherpp") is mode
        assert resolve_mode("http/test gopher++") is mode
        assert mode in modes_for_environment("LAN")
        assert mode not in modes_for_environment("WAN")
        # Not a paper table row, so paper_only never shows it.
        assert mode not in modes_for_environment("LAN", paper_only=True)
    finally:
        _unregister(mode.name, ("gopherpp",))


def test_register_mode_rejects_duplicates_unless_replace():
    from repro.core.modes import ProtocolMode
    from repro.http import HTTP11
    mode = ProtocolMode("HTTP/TEST Dup", HTTP11)
    try:
        register_mode(mode)
        with pytest.raises(ValueError, match="already registered"):
            register_mode(ProtocolMode("HTTP/TEST Dup", HTTP11))
        replacement = ProtocolMode("HTTP/TEST Dup", HTTP11, pipeline=True)
        register_mode(replacement, replace=True)
        assert resolve_mode("HTTP/TEST Dup") is replacement
    finally:
        _unregister("HTTP/TEST Dup", ())


def test_register_mode_rejects_non_modes():
    with pytest.raises(TypeError, match="ProtocolMode"):
        register_mode("pipelined")


def test_modes_for_environment_serves_the_paper_rows():
    ppp = modes_for_environment("PPP", paper_only=True)
    assert HTTP10_MODE not in ppp
    assert [m.name for m in ppp] == ["HTTP/1.1", "HTTP/1.1 Pipelined",
                                     "HTTP/1.1 Pipelined w. compression"]
    lan = modes_for_environment("LAN", paper_only=True)
    assert lan[0] is HTTP10_MODE


def test_modes_for_environment_includes_the_modern_modes():
    names = [m.name for m in modes_for_environment("WAN")]
    for expected in ("HTTP/MUX", "HTTP/MUX Push", "HTTP/1.1 Sharded x4"):
        assert expected in names


def test_table_modes_alias_still_answers():
    # Deprecated façade over modes_for_environment, kept for old code.
    from repro.core import TABLE_MODES
    assert HTTP10_MODE not in TABLE_MODES["PPP"]
    assert "PPP" in TABLE_MODES
    assert set(TABLE_MODES.keys()) == {"LAN", "WAN", "PPP"}


# ----------------------------------------------------------------------
# Did-you-mean suggestions
# ----------------------------------------------------------------------
def test_unknown_mode_suggests_closest_spelling():
    with pytest.raises(UnknownNameError) as excinfo:
        resolve_mode("pipelned")
    assert "did you mean 'pipelined'?" in str(excinfo.value)


def test_unknown_environment_suggests_closest_spelling():
    with pytest.raises(UnknownNameError) as excinfo:
        resolve_environment("WLAN")
    message = str(excinfo.value)
    assert "did you mean" in message and "choose from:" in message


def test_hopeless_typos_get_no_suggestion():
    with pytest.raises(UnknownNameError) as excinfo:
        resolve_mode("zzzzqqqq")
    assert "did you mean" not in str(excinfo.value)
