"""The shared name registry: every axis resolves the same way everywhere."""

import pytest

from repro.core import (HTTP10_MODE, HTTP11_PIPELINED, FIRST_TIME,
                        REVALIDATE)
from repro.core.registry import (MODES, PROFILES, TABLE_CELLS,
                                 UnknownNameError, resolve_environment,
                                 resolve_mode, resolve_profile,
                                 resolve_scenario)
from repro.server import APACHE
from repro.simnet import WAN


def test_canonical_names_resolve():
    assert resolve_mode("HTTP/1.0") is HTTP10_MODE
    assert resolve_profile("Apache") is APACHE
    assert resolve_environment("WAN") is WAN
    assert resolve_scenario("first-time") == FIRST_TIME


def test_aliases_and_case_insensitivity():
    assert resolve_mode("pipelined").name == "HTTP/1.1 Pipelined"
    assert resolve_mode("1.0") is HTTP10_MODE
    assert resolve_mode("http/1.1 pipelined") is resolve_mode("pipelined")
    assert resolve_profile("apache") is APACHE
    assert resolve_environment("wan") is WAN
    assert resolve_scenario("reval") == REVALIDATE
    assert resolve_scenario("Revalidate") == REVALIDATE


def test_objects_pass_through_unchanged():
    assert resolve_mode(HTTP11_PIPELINED) is HTTP11_PIPELINED
    assert resolve_profile(APACHE) is APACHE
    assert resolve_environment(WAN) is WAN


@pytest.mark.parametrize("resolver,kind,bogus", [
    (resolve_mode, "mode", "spdy"),
    (resolve_environment, "environment", "satellite"),
    (resolve_profile, "server", "nginx"),
    (resolve_scenario, "scenario", "third-time"),
])
def test_unknown_names_raise_with_choices(resolver, kind, bogus):
    with pytest.raises(UnknownNameError) as excinfo:
        resolver(bogus)
    message = str(excinfo.value)
    assert f"unknown {kind} {bogus!r}" in message
    assert "choose from:" in message


def test_unknown_name_error_is_a_value_error():
    with pytest.raises(ValueError):
        resolve_mode("gopher")


def test_table_cells_cover_tables_4_to_9():
    assert sorted(TABLE_CELLS) == [4, 5, 6, 7, 8, 9]
    assert TABLE_CELLS[4] == ("Jigsaw", "LAN")
    assert TABLE_CELLS[9] == ("Apache", "PPP")
    for server, environment in TABLE_CELLS.values():
        assert server in PROFILES
        assert resolve_environment(environment).name == environment


def test_registry_maps_are_canonical():
    for name, mode in MODES.items():
        assert mode.name == name
    for name, profile in PROFILES.items():
        assert profile.name == name
