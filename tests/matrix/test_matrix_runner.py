"""MatrixRunner: serial/parallel equivalence, caching, observability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runner import run_repeated
from repro.matrix import (ExperimentMatrix, ExperimentSpec, MatrixRunner,
                          ResultCache)
from repro.matrix.cache import RESULT_FIELDS

#: The cheapest cell in the grid (~10 ms a run): used everywhere speed
#: matters more than coverage.
FAST = dict(mode="pipelined", scenario="revalidate",
            environment="LAN", server="Apache")


def assert_results_identical(a, b):
    """Every averaged measurement column matches bit for bit."""
    for name in RESULT_FIELDS:
        if name in ("retries", "mean_request_bytes"):
            continue   # per-run fields, not averaged properties
        assert getattr(a, name) == getattr(b, name), name
    for run_a, run_b in zip(a.runs, b.runs):
        for name in RESULT_FIELDS:
            assert getattr(run_a, name) == getattr(run_b, name), name
        assert run_a.statuses == run_b.statuses


def test_serial_matches_run_repeated():
    spec = ExperimentSpec(seeds=(0, 1), **FAST)
    matrix_result = MatrixRunner().run(spec)
    legacy = run_repeated(spec.mode, spec.scenario,
                          environment=spec.environment,
                          profile=spec.server, seeds=(0, 1))
    assert matrix_result.packets == legacy.packets
    assert matrix_result.elapsed == legacy.elapsed
    assert matrix_result.percent_overhead == legacy.percent_overhead


def test_results_are_stripped_of_transcripts():
    result = MatrixRunner().run(ExperimentSpec(seeds=(0,), **FAST))
    assert result.runs[0].fetch is None
    assert result.runs[0].trace is None
    assert result.runs[0].packets > 0


def test_parallel_equals_serial_across_cells():
    specs = [
        ExperimentSpec(mode=mode, seeds=(0, 1), **axes)
        for mode in ("HTTP/1.1", "pipelined")
        for axes in ({"scenario": "revalidate", "environment": "LAN",
                      "server": "Apache"},
                     {"scenario": "revalidate", "environment": "LAN",
                      "server": "Jigsaw"})]
    serial = MatrixRunner(jobs=1).run_many(specs)
    parallel = MatrixRunner(jobs=2).run_many(specs)
    for a, b in zip(serial, parallel):
        assert_results_identical(a, b)


@settings(max_examples=4, deadline=None)
@given(seeds=st.lists(st.integers(min_value=0, max_value=40),
                      min_size=1, max_size=3, unique=True))
def test_parallel_equals_serial_property(seeds):
    """Any seed list: jobs=2 and jobs=1 agree bit for bit."""
    spec = ExperimentSpec(seeds=tuple(seeds), **FAST)
    assert_results_identical(MatrixRunner(jobs=1).run(spec),
                             MatrixRunner(jobs=2).run(spec))


def test_cache_second_pass_simulates_nothing(tmp_path):
    specs = [ExperimentSpec(seeds=(0, 1), **FAST),
             ExperimentSpec(seeds=(0, 1),
                            **{**FAST, "mode": "HTTP/1.1"})]
    cache = ResultCache(tmp_path / "cache")

    first = MatrixRunner(cache=cache)
    cold = first.run_many(specs)
    assert first.stats.sim_runs == 4
    assert first.stats.cache_hits == 0
    assert first.stats.cache_misses == 4

    second = MatrixRunner(cache=cache)
    warm = second.run_many(specs)
    assert second.stats.sim_runs == 0
    assert second.stats.cache_hits == 4
    assert second.stats.cache_misses == 0
    for a, b in zip(cold, warm):
        assert_results_identical(a, b)


def test_cache_partial_hit_runs_only_new_seeds(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    MatrixRunner(cache=cache).run(ExperimentSpec(seeds=(0,), **FAST))
    runner = MatrixRunner(cache=cache)
    runner.run(ExperimentSpec(seeds=(0, 1), **FAST))
    assert runner.stats.cache_hits == 1
    assert runner.stats.sim_runs == 1


def test_progress_events_and_stats():
    events = []
    runner = MatrixRunner(progress=events.append)
    spec = ExperimentSpec(seeds=(0, 1), **FAST)
    runner.run(spec)
    assert len(events) == 2
    assert [e.completed for e in events] == [1, 2]
    assert all(e.total == 2 for e in events)
    assert all(e.status == "run" for e in events)
    assert all(e.wall_time > 0 for e in events)
    assert all(spec.label == e.label for e in events)
    stats = runner.stats
    assert stats.specs == 1
    assert stats.units == 2
    assert stats.sim_runs == 2
    assert set(stats.unit_wall_times) == {(spec.label, 0),
                                          (spec.label, 1)}
    assert "2 runs requested" in stats.summary()


def test_cache_hits_emit_hit_events(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = ExperimentSpec(seeds=(0,), **FAST)
    MatrixRunner(cache=cache).run(spec)
    events = []
    MatrixRunner(cache=cache, progress=events.append).run(spec)
    assert [e.status for e in events] == ["hit"]
    assert events[0].wall_time == 0.0


def test_jobs_zero_means_cpu_count():
    assert MatrixRunner(jobs=0).jobs >= 1
    assert MatrixRunner(jobs=None).jobs >= 1


def test_pool_persists_across_run_many_calls():
    specs = [ExperimentSpec(seeds=(0, 1), **FAST),
             ExperimentSpec(seeds=(0, 1),
                            **{**FAST, "mode": "HTTP/1.1"})]
    with MatrixRunner(jobs=2) as runner:
        runner.run_many(specs)
        pool = runner._pool
        assert pool is not None
        runner.run_many(specs)
        assert runner._pool is pool        # same workers, no respawn
    assert runner._pool is None            # __exit__ closed it


def test_parallel_run_populates_ipc_stats():
    specs = [ExperimentSpec(seeds=(s,), **FAST) for s in range(4)]
    with MatrixRunner(jobs=2) as runner:
        runner.run_many(specs)
        assert runner.stats.ipc_batches > 0
        assert runner.stats.bytes_pickled > 0
        assert "ipc" in runner.stats.summary()


def test_serial_run_has_no_ipc():
    runner = MatrixRunner(jobs=1)
    runner.run(ExperimentSpec(seeds=(0,), **FAST))
    assert runner.stats.ipc_batches == 0
    assert runner.stats.bytes_pickled == 0


def test_close_is_idempotent():
    runner = MatrixRunner(jobs=2)
    runner.run_many([ExperimentSpec(seeds=(0,), **FAST)])
    runner.close()
    runner.close()
    assert runner._pool is None
    # A closed runner can still run serially-after-close via a new pool.
    runner.run_many([ExperimentSpec(seeds=(1,), **FAST)])
    runner.close()


def test_explicit_chunk_size_still_bit_identical():
    spec = ExperimentSpec(seeds=(0, 1, 2, 3), **FAST)
    with MatrixRunner(jobs=2, chunk_size=1) as fine, \
            MatrixRunner(jobs=2, chunk_size=4) as coarse:
        assert_results_identical(fine.run(spec), coarse.run(spec))


def test_cached_parallel_batches_flush_once_per_chunk(tmp_path):
    """Batched put_many keeps the cache complete: a second runner sees
    every unit the first one simulated."""
    cache = ResultCache(tmp_path / "cache")
    specs = [ExperimentSpec(seeds=(0, 1), **FAST),
             ExperimentSpec(seeds=(0, 1),
                            **{**FAST, "server": "Jigsaw"})]
    with MatrixRunner(jobs=2, cache=cache) as first:
        first.run_many(specs)
    assert len(cache) == 4
    second = MatrixRunner(cache=cache)
    second.run_many(specs)
    assert second.stats.sim_runs == 0
    assert second.stats.cache_hits == 4


@pytest.mark.slow
def test_full_table_parallel_equals_serial():
    """Whole-table sweep: Table 4's grid, parallel vs serial."""
    specs = ExperimentMatrix.for_table(4, seeds=(0,)).expand()
    serial = MatrixRunner(jobs=1).run_many(specs)
    parallel = MatrixRunner(jobs=4).run_many(specs)
    for a, b in zip(serial, parallel):
        assert_results_identical(a, b)
