"""Supervised execution: kills, hangs, poison cells, retry ladder."""

import pytest

from repro.core.runner import UnitFailure
from repro.faults import HarnessFaultPlan, HarnessPoisonError
from repro.matrix import ExperimentSpec, MatrixRunner
from repro.matrix.supervisor import DEADLINE_GRACE, Supervisor

from .test_matrix_runner import FAST, assert_results_identical

#: Two cheap LAN cells x three seeds = a six-unit grid that still
#: exercises chunking, retries and sibling survival.
GRID = [
    dict(seeds=(0, 1, 2), **FAST),
    dict(seeds=(0, 1, 2), mode="HTTP/1.1", scenario="revalidate",
         environment="LAN", server="Jigsaw"),
]

#: Generous per-unit wall budget: a LAN revalidate unit takes ~10 ms,
#: so 30 s can not fire spuriously even on a loaded CI machine.
SAFE_DEADLINE = 30.0


def specs():
    return [ExperimentSpec(**axes) for axes in GRID]


@pytest.fixture(scope="module")
def serial_baseline():
    return MatrixRunner(jobs=1).run_many(specs())


# ----------------------------------------------------------------------
# UnitFailure plumbing
# ----------------------------------------------------------------------
def test_unit_failure_from_exception_digest_and_summary():
    try:
        raise HarnessPoisonError("boom")
    except HarnessPoisonError as exc:
        failure = UnitFailure.from_exception("cell", 7, exc, attempts=3)
    assert failure.kind == "exception"
    assert failure.seed == 7
    assert failure.attempts == 3
    assert "HarnessPoisonError: boom" in failure.error
    assert len(failure.traceback_digest) == 12
    assert "cell" in failure.summary()
    assert "3 attempt" in failure.summary()


def test_averaged_result_carries_failures_and_nan_means():
    import math
    from repro.core.runner import AveragedResult
    failure = UnitFailure(label="x", seed=0, kind="deadline",
                          error="timed out", traceback_digest="",
                          attempts=2)
    empty = AveragedResult([], failures=[failure])
    assert not empty.ok
    assert math.isnan(empty.packets)
    assert math.isnan(empty.elapsed)
    full = MatrixRunner(jobs=1).run(ExperimentSpec(seeds=(0,), **FAST))
    assert full.ok and not full.failures


# ----------------------------------------------------------------------
# Poison cells: the exception rung of the ladder
# ----------------------------------------------------------------------
def test_poison_cell_quarantined_serially():
    plan = HarnessFaultPlan(name="t", poison_units=(1,), poison_seed=1)
    runner = MatrixRunner(jobs=1, harness_faults=plan)
    results = runner.run_many(specs())
    # Unit ordinal 1 is (first spec, seed 1): quarantined, not raised.
    assert len(results[0].failures) == 1
    failure = results[0].failures[0]
    assert failure.kind == "exception"
    assert failure.seed == 1
    assert failure.attempts == 1          # serial is the final rung
    assert "HarnessPoisonError" in failure.error
    # Siblings (seeds 0 and 2) and the second cell still completed.
    assert len(results[0].runs) == 2
    assert results[1].ok
    assert runner.stats.failures == 1
    assert runner.stats.sim_runs == 5


def test_poison_cell_walks_the_full_ladder_in_parallel(serial_baseline):
    plan = HarnessFaultPlan(name="t", poison_units=(1,), poison_seed=1)
    events = []
    with MatrixRunner(jobs=2, chunk_size=1, harness_faults=plan,
                      retry_budget=1, progress=events.append,
                      unit_deadline=SAFE_DEADLINE) as runner:
        results = runner.run_many(specs())
        stats = runner.stats
    failure = results[0].failures[0]
    # initial + 1 parallel retry + 1 serial retry, all poisoned.
    assert failure.attempts == 3
    assert failure.kind == "exception"
    assert stats.unit_retries == 2
    assert stats.failures == 1
    statuses = [e.status for e in events]
    assert statuses.count("retried") == 2
    assert statuses.count("failed") == 1
    failed = [e for e in events if e.status == "failed"][0]
    assert failed.attempt == 3
    # Every healthy unit matches the serial baseline bit for bit.
    assert len(results[0].runs) == 2
    assert_results_identical(results[1], serial_baseline[1])


def test_transient_exception_recovers_within_budget(serial_baseline):
    # Poison fires on every attempt only for kill/hang-free plans; a
    # poison restricted to attempt 1 does not exist, so emulate the
    # transient case with the kill fault instead (first attempt only)
    # exercised through the exception path: hang/kill cover machine
    # faults elsewhere — here verify a *clean* supervised run is
    # byte-identical and charges no retries.
    with MatrixRunner(jobs=2, unit_deadline=SAFE_DEADLINE) as runner:
        results = runner.run_many(specs())
        stats = runner.stats
    assert stats.failures == 0
    assert stats.unit_retries == 0
    assert stats.pool_respawns == 0
    for got, want in zip(results, serial_baseline):
        assert_results_identical(got, want)


# ----------------------------------------------------------------------
# Machine faults: dead and hung workers
# ----------------------------------------------------------------------
def test_sigkilled_worker_recovers_byte_identical(serial_baseline):
    plan = HarnessFaultPlan(name="t", kill_unit=2)
    with MatrixRunner(jobs=2, chunk_size=2, harness_faults=plan,
                      unit_deadline=SAFE_DEADLINE) as runner:
        results = runner.run_many(specs())
        stats = runner.stats
    assert stats.pool_respawns >= 1
    assert stats.unit_retries >= 1
    assert stats.failures == 0
    assert stats.sim_runs == 6
    for got, want in zip(results, serial_baseline):
        assert_results_identical(got, want)


def test_hung_worker_hits_deadline_and_recovers(serial_baseline):
    plan = HarnessFaultPlan(name="t", hang_unit=1, hang_seconds=120.0)
    with MatrixRunner(jobs=2, chunk_size=1, harness_faults=plan,
                      unit_deadline=3.0) as runner:
        results = runner.run_many(specs())
        stats = runner.stats
    assert stats.pool_respawns >= 1
    assert stats.failures == 0
    for got, want in zip(results, serial_baseline):
        assert_results_identical(got, want)


def test_deadline_defaults_derive_from_max_sim_time():
    runner = MatrixRunner(jobs=2)
    supervisor = Supervisor(runner)
    spec = ExperimentSpec(max_sim_time=100.0, **FAST)
    assert supervisor._deadline_for(spec) == DEADLINE_GRACE * 100.0
    explicit = Supervisor(runner, unit_deadline=7.5)
    assert explicit._deadline_for(spec) == 7.5
    runner.close()


# ----------------------------------------------------------------------
# Pool lifecycle hygiene (satellite: close/terminate on dead workers)
# ----------------------------------------------------------------------
def test_close_handles_already_dead_workers():
    plan = HarnessFaultPlan(name="t", kill_unit=0)
    runner = MatrixRunner(jobs=2, chunk_size=6, retry_budget=0,
                          harness_faults=plan,
                          unit_deadline=SAFE_DEADLINE)
    results = runner.run_many(specs())
    # retry_budget=0: the killed chunk's units quarantine immediately.
    total_failures = sum(len(r.failures) for r in results)
    assert total_failures == 6
    assert all(f.kind == "worker-lost"
               for r in results for f in r.failures)
    runner.close()          # must not hang despite the SIGKILL
    assert runner._pool is None
    runner.close()          # idempotent


def test_poison_without_seed_restriction_hits_one_ordinal():
    # poison_seed=None poisons the listed ordinals for any seed; the
    # ordinal is the unit's slot index, so seeds (0,1,2) of one spec
    # occupy ordinals (0,1,2) and exactly one unit is poisoned.
    plan = HarnessFaultPlan(name="t", poison_units=(1,))
    runner = MatrixRunner(jobs=1, harness_faults=plan)
    spec = ExperimentSpec(seeds=(0, 1, 2), **FAST)
    results = runner.run_many([spec])
    assert len(results[0].failures) == 1
    assert results[0].failures[0].seed == 1
    assert len(results[0].runs) == 2


def test_serial_artifact_delta_survives_early_generator_exit(
        monkeypatch):
    # Satellite regression: the serial path used to add the artifact
    # hit/miss delta only after the loop finished, so a consumer that
    # stopped early (or a raising unit) lost it.  The delta now flushes
    # in a finally block.
    from repro.content import artifacts
    from repro.matrix import runner as runner_mod
    from .test_cache import synthetic_result

    def fake_run_unit(spec, seed):
        stats = artifacts.get_store().stats
        stats.misses += 3
        stats.hits += 2
        return synthetic_result(), 0.01

    monkeypatch.setattr(runner_mod, "run_unit", fake_run_unit)
    runner = MatrixRunner(jobs=1)
    spec = ExperimentSpec(seeds=(0, 1, 2), **FAST)
    units = [(spec, seed) for seed in (0, 1, 2)]
    gen = runner._execute(units, [0, 1, 2])
    next(gen)            # resolve one unit...
    gen.close()          # ...then abandon the generator
    assert runner.stats.artifact_misses == 3
    assert runner.stats.artifact_hits == 2
