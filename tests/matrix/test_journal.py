"""RunJournal: atomicity, round-trips, hydration, resume identity."""

import json

import pytest

from repro.core.runner import UnitFailure
from repro.matrix import ExperimentSpec, MatrixRunner, RunJournal, unit_key

from .test_cache import synthetic_result
from .test_matrix_runner import FAST, assert_results_identical


@pytest.fixture
def journal(tmp_path):
    return RunJournal("trial", tmp_path / "runs")


def test_run_id_must_be_filename_safe(tmp_path):
    for bad in ("", "../escape", "a/b", "a b", ".hidden"):
        with pytest.raises(ValueError):
            RunJournal(bad, tmp_path)
    RunJournal("report-1a2b3c", tmp_path)    # derived ids are fine


def test_begin_is_idempotent_and_writes_manifest(journal):
    assert not journal.exists()
    journal.begin()
    journal.begin()
    assert journal.exists()
    manifest = json.loads((journal.path / "manifest.json").read_text())
    assert manifest["run_id"] == "trial"
    assert len(journal) == 0


def test_result_round_trip(journal):
    spec = ExperimentSpec(**FAST)
    result = synthetic_result()
    journal.record_result(spec, 0, result)
    record = journal.get(unit_key(spec, 0))
    assert record["status"] == "ok"
    hydrated = RunJournal.hydrate(record)
    assert hydrated.packets == result.packets
    assert hydrated.elapsed == result.elapsed
    assert hydrated.fetch is None and hydrated.trace is None


def test_failure_round_trip(journal):
    spec = ExperimentSpec(**FAST)
    failure = UnitFailure(label=spec.label, seed=3, kind="deadline",
                          error="wall-clock deadline expired",
                          traceback_digest="", attempts=3)
    journal.record_failure(spec, 3, failure)
    hydrated = RunJournal.hydrate(journal.get(unit_key(spec, 3)))
    assert hydrated == failure


def test_no_temp_debris_after_writes(journal):
    spec = ExperimentSpec(**FAST)
    for seed in range(5):
        journal.record_result(spec, seed, synthetic_result())
    leftovers = [p for p in journal.units_dir.iterdir()
                 if not p.name.endswith(".json")]
    assert leftovers == []
    assert len(journal) == 5


def test_corrupt_record_is_skipped_and_unlinked(journal):
    spec = ExperimentSpec(**FAST)
    journal.record_result(spec, 0, synthetic_result())
    bad = journal.units_dir / ("e" * 64 + ".json")
    bad.write_text("{torn mid-write")
    records = journal.load()
    assert unit_key(spec, 0) in records
    assert not bad.exists()          # healed by removal
    assert len(records) == 1


def test_hydrate_rejects_unrecognized_shapes():
    assert RunJournal.hydrate({}) is None
    assert RunJournal.hydrate({"status": "weird"}) is None
    assert RunJournal.hydrate({"status": "ok"}) is None
    assert RunJournal.hydrate({"status": "failed",
                               "failure": {"bogus": 1}}) is None


def test_clear_and_list_runs(tmp_path):
    root = tmp_path / "runs"
    a = RunJournal("alpha", root)
    b = RunJournal("beta", root)
    a.begin()
    b.record(("a" * 64), {"status": "ok", "row": "x"})
    assert sorted(RunJournal.list_runs(root)) == ["alpha", "beta"]
    assert b.clear() == 1
    assert len(b) == 0
    assert RunJournal.list_runs(tmp_path / "missing") == []


def test_generic_records_need_hex_keys(journal):
    with pytest.raises(ValueError):
        journal.record("not-a-digest", {"status": "ok"})


# ----------------------------------------------------------------------
# End-to-end resume through the MatrixRunner
# ----------------------------------------------------------------------
def grid_specs():
    return [ExperimentSpec(seeds=(0, 1, 2), **FAST),
            ExperimentSpec(seeds=(0, 1, 2), mode="HTTP/1.1",
                           scenario="revalidate", environment="LAN",
                           server="Jigsaw")]


def test_resume_replays_byte_identical(tmp_path):
    specs = grid_specs()
    serial = MatrixRunner(jobs=1).run_many(specs)
    root = tmp_path / "runs"
    with MatrixRunner(jobs=2, journal=RunJournal("grid", root)) as r:
        first = r.run_many(specs)
        assert r.stats.sim_runs == 6
    with MatrixRunner(jobs=2, journal=RunJournal("grid", root)) as r:
        resumed = r.run_many(specs)
        assert r.stats.sim_runs == 0
        assert r.stats.journal_hits == 6
    for a, b, c in zip(serial, first, resumed):
        assert_results_identical(a, b)
        assert_results_identical(a, c)


def test_partial_journal_resumes_only_whats_missing(tmp_path):
    specs = grid_specs()
    root = tmp_path / "runs"
    # Simulate an interrupted run: journal only the first cell's units.
    seeding = RunJournal("grid", root)
    serial = MatrixRunner(jobs=1,
                          journal=seeding).run_many([specs[0]])
    events = []
    with MatrixRunner(jobs=2, journal=RunJournal("grid", root),
                      progress=events.append) as r:
        resumed = r.run_many(specs)
        assert r.stats.journal_hits == 3
        assert r.stats.sim_runs == 3      # only the second cell ran
    assert_results_identical(serial[0], resumed[0])
    hits = [e for e in events if e.status == "hit"]
    assert len(hits) == 3


def test_journaled_failures_replay_on_resume(tmp_path):
    from repro.faults import HarnessFaultPlan
    specs = grid_specs()
    root = tmp_path / "runs"
    plan = HarnessFaultPlan(name="t", poison_units=(1,), poison_seed=1)
    with MatrixRunner(jobs=1, harness_faults=plan,
                      journal=RunJournal("grid", root)) as r:
        first = r.run_many(specs)
    assert len(first[0].failures) == 1
    # Resume WITHOUT the fault plan: the quarantine verdict replays
    # from the journal rather than re-running the unit.
    with MatrixRunner(jobs=1, journal=RunJournal("grid", root)) as r:
        resumed = r.run_many(specs)
        assert r.stats.sim_runs == 0
        assert r.stats.failures == 1
    assert resumed[0].failures == first[0].failures
    assert_results_identical(first[1], resumed[1])


def test_runner_accepts_run_id_string():
    runner = MatrixRunner(jobs=1, journal="my-run")
    assert isinstance(runner.journal, RunJournal)
    assert runner.journal.run_id == "my-run"
