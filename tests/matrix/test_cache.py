"""ResultCache: round-trips, misses, invalidation, atomicity."""

import json

import pytest

from repro.core.runner import RunResult
from repro.matrix import ExperimentSpec, ResultCache
from repro.matrix.cache import (RESULT_FIELDS, result_from_payload,
                                result_to_payload)


def synthetic_result(**overrides) -> RunResult:
    values = dict(
        packets=431, payload_bytes=180_000, percent_overhead=12.5,
        elapsed=1.853, packets_client_to_server=230,
        packets_server_to_client=201, connections_used=43,
        max_parallel_connections=4, retries=2,
        server_cpu_seconds=0.0912, mean_packets_per_connection=10.02,
        mean_packet_size=417.9, mean_request_bytes=301.5,
        statuses={200: 42, 304: 1}, fetch=None, trace=None)
    values.update(overrides)
    return RunResult(**values)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_payload_round_trip_preserves_every_field():
    original = synthetic_result()
    hydrated = result_from_payload(
        json.loads(json.dumps(result_to_payload(original))))
    for name in RESULT_FIELDS:
        assert getattr(hydrated, name) == getattr(original, name)
    assert hydrated.statuses == {200: 42, 304: 1}   # int keys again
    assert hydrated.fetch is None
    assert hydrated.trace is None


def test_get_put_round_trip(cache):
    spec = ExperimentSpec()
    assert cache.get(spec, 0) is None
    result = synthetic_result()
    cache.put(spec, 0, result)
    hydrated = cache.get(spec, 0)
    assert hydrated is not None
    assert hydrated.packets == result.packets
    assert hydrated.elapsed == result.elapsed
    assert hydrated.statuses == result.statuses
    assert len(cache) == 1


def test_float_values_round_trip_bit_identically(cache):
    result = synthetic_result(elapsed=0.21802617626928156,
                              percent_overhead=7.123456789012345)
    cache.put(ExperimentSpec(), 3, result)
    hydrated = cache.get(ExperimentSpec(), 3)
    assert hydrated.elapsed == result.elapsed
    assert hydrated.percent_overhead == result.percent_overhead


def test_different_seed_is_a_miss(cache):
    cache.put(ExperimentSpec(), 0, synthetic_result())
    assert cache.get(ExperimentSpec(), 1) is None


def test_seed_list_does_not_change_unit_keys(cache):
    """Re-averaging over more seeds reuses every unit already stored."""
    cache.put(ExperimentSpec(seeds=(0, 1)), 0, synthetic_result())
    assert cache.get(ExperimentSpec(seeds=(0, 1, 2, 3)), 0) is not None


def test_spec_changes_invalidate(cache):
    spec = ExperimentSpec()
    cache.put(spec, 0, synthetic_result())
    assert cache.get(spec.replace(jitter=0.05), 0) is None
    assert cache.get(spec.replace(environment="WAN"), 0) is None
    assert cache.get(spec.replace(
        client_overrides={"max_connections": 2}), 0) is None
    assert cache.get(spec.replace(verify=False), 0) is None
    assert cache.get(spec.replace(faults="bursty-loss"), 0) is None


def test_fault_counters_round_trip(cache):
    """The robustness counters survive the cache like any other field."""
    result = synthetic_result(dropped_loss=7, dropped_overflow=2,
                              retransmissions=9, timeouts=1,
                              fast_retransmits=4, checksum_drops=3)
    spec = ExperimentSpec(faults="wire-chaos")
    cache.put(spec, 0, result)
    hydrated = cache.get(spec, 0)
    assert hydrated.dropped_loss == 7
    assert hydrated.dropped_overflow == 2
    assert hydrated.retransmissions == 9
    assert hydrated.timeouts == 1
    assert hydrated.fast_retransmits == 4
    assert hydrated.checksum_drops == 3


def test_version_bump_invalidates(tmp_path):
    spec = ExperimentSpec()
    old = ResultCache(tmp_path, version="1.0.0")
    new = ResultCache(tmp_path, version="1.1.0")
    old.put(spec, 0, synthetic_result())
    assert new.get(spec, 0) is None
    assert old.get(spec, 0) is not None


def test_corrupt_entry_is_a_miss(cache):
    spec = ExperimentSpec()
    cache.put(spec, 0, synthetic_result())
    cache.path(spec, 0).write_text("{not json")
    assert cache.get(spec, 0) is None


def test_corrupt_entry_is_unlinked_on_read(cache):
    """A poisoned entry is healed by removal the first time it's seen,
    so it can never be mistaken for a hit twice or linger forever."""
    spec = ExperimentSpec()
    cache.put(spec, 0, synthetic_result())
    cache.path(spec, 0).write_text("{not json")
    assert cache.get(spec, 0) is None
    assert not cache.path(spec, 0).exists()


def test_truncated_entry_is_a_miss_and_heals_on_next_put(cache):
    """A crash mid-disk-flush (torn JSON) or a missing payload key must
    read as a miss, and the next put_many writes a clean replacement —
    the runner never crashes and never serves the torn entry."""
    spec = ExperimentSpec()
    original = synthetic_result()
    cache.put(spec, 0, original)
    good = cache.path(spec, 0).read_text()
    for damage in (good[:len(good) // 2],        # torn mid-write
                   '{"version": "x"}',           # missing result key
                   '{"result": {"packets": 1}}',  # missing columns
                   "[]"):                        # wrong JSON shape
        cache.path(spec, 0).write_text(damage)
        assert cache.get(spec, 0) is None
        assert cache.put_many([(spec, 0, original)]) == 1
        healed = cache.get(spec, 0)
        assert healed is not None
        assert healed.packets == original.packets
        assert healed.elapsed == original.elapsed


def test_clear_and_len(cache):
    for seed in range(3):
        cache.put(ExperimentSpec(), seed, synthetic_result())
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
    assert cache.get(ExperimentSpec(), 0) is None


def test_put_many_counts_and_round_trips(cache):
    entries = [(ExperimentSpec(), seed, synthetic_result(packets=400 + seed))
               for seed in range(4)]
    assert cache.put_many(entries) == 4
    assert cache.put_many([]) == 0
    for seed in range(4):
        assert cache.get(ExperimentSpec(), seed).packets == 400 + seed


def test_two_caches_share_one_directory(tmp_path):
    """Two runner processes pointed at one cache directory interoperate
    (writes are temp-then-rename, so readers never see partial JSON)."""
    a = ResultCache(tmp_path / "shared")
    b = ResultCache(tmp_path / "shared")
    spec = ExperimentSpec()
    a.put(spec, 0, synthetic_result(packets=111))
    hydrated = b.get(spec, 0)
    assert hydrated is not None and hydrated.packets == 111
    b.put(spec, 0, synthetic_result(packets=222))   # last write wins
    assert a.get(spec, 0).packets == 222


def test_racing_writers_leave_no_temp_debris(tmp_path):
    """Interleaved put() from two caches on the same keys: every entry
    parses, and every uniquely named temp file was consumed by the
    atomic rename."""
    root = tmp_path / "shared"
    a, b = ResultCache(root), ResultCache(root)
    spec = ExperimentSpec()
    for _ in range(5):
        for seed in range(3):
            a.put(spec, seed, synthetic_result())
            b.put(spec, seed, synthetic_result())
    for seed in range(3):
        assert a.get(spec, seed) is not None
    leftovers = [p for p in root.rglob("*") if p.is_file()
                 and not p.name.endswith(".json")]
    assert leftovers == []


def test_concurrent_threads_share_one_cache(tmp_path):
    import threading
    cache = ResultCache(tmp_path / "shared")
    spec = ExperimentSpec()
    errors = []

    def worker(seed):
        try:
            for _ in range(5):
                cache.put(spec, seed, synthetic_result(packets=seed))
                hydrated = cache.get(spec, seed)
                assert hydrated is not None
                assert hydrated.packets == seed
        except Exception as exc:          # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(seed,))
               for seed in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) == 6


def test_entries_record_their_identity(cache):
    """Cache files carry the spec they were keyed from (debuggability)."""
    spec = ExperimentSpec(mode="1.0", environment="ppp")
    cache.put(spec, 4, synthetic_result())
    entry = json.loads(cache.path(spec, 4).read_text())
    assert entry["seed"] == 4
    assert entry["spec"] == spec.canonical_dict()
