"""ExperimentSpec / ExperimentMatrix: canonicalization and expansion."""

import dataclasses
import json

import pytest

from repro.client.robot import ClientConfig
from repro.core import HTTP10_MODE, HTTP11_PIPELINED, UnknownNameError
from repro.core.browsers import BROWSERS
from repro.matrix import (DEFAULT_SEEDS, ExperimentMatrix, ExperimentSpec,
                          client_config_overrides)


# ----------------------------------------------------------------------
# Spec canonicalization
# ----------------------------------------------------------------------
def test_axes_canonicalize_to_registry_names():
    spec = ExperimentSpec(mode="pipelined", scenario="reval",
                          environment="wan", server="apache")
    assert spec.mode == "HTTP/1.1 Pipelined"
    assert spec.scenario == "revalidate"
    assert spec.environment == "WAN"
    assert spec.server == "Apache"


def test_equal_experiments_are_equal_specs():
    by_alias = ExperimentSpec(mode="1.1", scenario="first",
                              environment="lan", server="jigsaw")
    by_name = ExperimentSpec(mode="HTTP/1.1", scenario="first-time",
                             environment="LAN", server="Jigsaw")
    assert by_alias == by_name
    assert hash(by_alias) == hash(by_name)


def test_mode_object_accepted():
    spec = ExperimentSpec(mode=HTTP11_PIPELINED)
    assert spec.mode == HTTP11_PIPELINED.name
    assert spec.resolved_mode() is HTTP11_PIPELINED


def test_defaults():
    spec = ExperimentSpec()
    assert spec.seeds == DEFAULT_SEEDS
    assert spec.runs == len(DEFAULT_SEEDS)


def test_single_int_seed_becomes_tuple():
    assert ExperimentSpec(seeds=7).seeds == (7,)


def test_empty_seeds_rejected():
    with pytest.raises(ValueError):
        ExperimentSpec(seeds=())


def test_unknown_mode_raises():
    with pytest.raises(UnknownNameError, match="unknown mode"):
        ExperimentSpec(mode="spdy")


def test_units_enumerates_cell_seed_pairs():
    spec = ExperimentSpec(seeds=(3, 5))
    assert list(spec.units()) == [(spec, 3), (spec, 5)]


def test_label_names_all_axes():
    label = ExperimentSpec().label
    for part in ("HTTP/1.1 Pipelined", "first-time", "LAN", "Apache"):
        assert part in label


# ----------------------------------------------------------------------
# Client overrides
# ----------------------------------------------------------------------
def test_overrides_dict_becomes_sorted_tuple():
    spec = ExperimentSpec(client_overrides={"pipeline": False,
                                            "max_connections": 2})
    assert spec.client_overrides == (("max_connections", 2),
                                     ("pipeline", False))


def test_unknown_override_field_rejected():
    with pytest.raises(UnknownNameError, match="client config field"):
        ExperimentSpec(client_overrides={"warp_speed": True})


def test_client_config_applies_overrides():
    spec = ExperimentSpec(mode="pipelined",
                          client_overrides={"max_connections": 2})
    config = spec.client_config()
    assert config.max_connections == 2
    assert config.pipeline is True   # mode default preserved


def test_for_client_config_round_trips():
    for browser in BROWSERS:
        wanted = browser.client_config()
        spec = ExperimentSpec.for_client_config(
            HTTP10_MODE, "first-time", "PPP", "Jigsaw", wanted)
        assert spec.client_config() == wanted


def test_client_config_overrides_empty_for_mode_default():
    default = HTTP11_PIPELINED.client_config()
    assert client_config_overrides(HTTP11_PIPELINED, default) == ()
    assert client_config_overrides("pipelined", default) == ()


def test_canonical_dict_is_json_stable_and_seedless():
    a = ExperimentSpec(seeds=(0, 1))
    b = ExperimentSpec(seeds=(5,))
    assert a.canonical_dict() == b.canonical_dict()
    blob = json.dumps(a.canonical_dict(), sort_keys=True)
    assert json.loads(blob) == a.canonical_dict()
    assert "seeds" not in a.canonical_dict()


def test_cache_key_fields_cover_the_spec():
    """CACHE_KEY_FIELDS is the single source of the cell identity."""
    from repro.matrix import CACHE_KEY_FIELDS
    spec = ExperimentSpec()
    assert list(spec.canonical_dict()) == list(CACHE_KEY_FIELDS)
    field_names = {f.name for f in dataclasses.fields(ExperimentSpec)}
    # Every spec field is either cache-keyed or the unit-level seeds
    # axis (each (cell, seed) unit is keyed separately).
    assert field_names == set(CACHE_KEY_FIELDS) | {"seeds"}


def test_replace_recanonicalizes():
    spec = ExperimentSpec().replace(mode="1.0", environment="ppp")
    assert spec.mode == "HTTP/1.0"
    assert spec.environment == "PPP"


# ----------------------------------------------------------------------
# Fault-plan dimension
# ----------------------------------------------------------------------
def test_fault_plan_canonicalizes_to_its_name():
    from repro.faults import FAULT_PLANS
    by_name = ExperimentSpec(faults="bursty-loss")
    by_plan = ExperimentSpec(faults=FAULT_PLANS["bursty-loss"])
    assert by_name.faults == "bursty-loss"
    assert by_name == by_plan
    assert hash(by_name) == hash(by_plan)


# ----------------------------------------------------------------------
# Fast-path dimension
# ----------------------------------------------------------------------
def test_fastpath_defaults_on_and_keys_the_cache():
    fast = ExperimentSpec()
    slow = ExperimentSpec(fastpath=False)
    assert fast.fastpath is True
    assert slow.fastpath is False
    # Trace-identical but work-profile-different: distinct cache keys.
    assert fast != slow
    assert fast.canonical_dict()["fastpath"] is True
    assert slow.canonical_dict()["fastpath"] is False
    assert fast.replace(fastpath=False) == slow


def test_faults_appear_in_canonical_dict():
    clean = ExperimentSpec()
    chaotic = ExperimentSpec(faults="wire-chaos")
    assert clean.canonical_dict()["faults"] is None
    assert chaotic.canonical_dict()["faults"] == "wire-chaos"
    assert clean.canonical_dict() != chaotic.canonical_dict()


def test_unknown_fault_plan_rejected():
    with pytest.raises(ValueError, match="unknown fault plan"):
        ExperimentSpec(faults="packet-gremlins")


# ----------------------------------------------------------------------
# Matrix expansion
# ----------------------------------------------------------------------
def test_full_matrix_size():
    matrix = ExperimentMatrix()
    assert len(matrix) == 4 * 2 * 3 * 2
    specs = matrix.expand()
    assert len(specs) == len(matrix)
    assert len(set(specs)) == len(specs)


def test_expand_order_is_server_env_mode_scenario():
    matrix = ExperimentMatrix(modes=("1.0", "pipelined"),
                              scenarios=("first", "reval"),
                              environments=("LAN", "WAN"),
                              servers=("Jigsaw", "Apache"))
    specs = matrix.expand()
    assert [s.server for s in specs[:8]] == ["Jigsaw"] * 8
    assert [s.environment for s in specs[:4]] == ["LAN"] * 4
    assert specs[0].mode == "HTTP/1.0"
    assert specs[0].scenario == "first-time"
    assert specs[1].scenario == "revalidate"
    assert specs[2].mode == "HTTP/1.1 Pipelined"


def test_matrix_axes_canonicalize_and_reject_duplicates():
    matrix = ExperimentMatrix(modes=("pipelined",),
                              environments="wan", servers="apache")
    assert matrix.modes == ("HTTP/1.1 Pipelined",)
    assert matrix.environments == ("WAN",)
    with pytest.raises(ValueError, match="duplicate"):
        ExperimentMatrix(modes=("pipelined", "HTTP/1.1 Pipelined"))
    with pytest.raises(ValueError, match="empty"):
        ExperimentMatrix(environments=())


def test_for_table_ppp_omits_http10():
    matrix = ExperimentMatrix.for_table(8, seeds=(0,))
    assert matrix.servers == ("Jigsaw",)
    assert matrix.environments == ("PPP",)
    assert "HTTP/1.0" not in matrix.modes
    assert len(matrix.expand()) == 6


def test_for_table_lan_has_eight_cells():
    matrix = ExperimentMatrix.for_table(5)
    assert matrix.servers == ("Apache",)
    assert len(matrix.expand()) == 8
    assert "HTTP/1.0" in matrix.modes


def test_for_table_unknown_number():
    with pytest.raises(UnknownNameError, match="unknown protocol table"):
        ExperimentMatrix.for_table(12)


def test_specs_usable_as_dict_keys():
    seen = {spec: spec.label for spec in ExperimentMatrix().expand()}
    assert len(seen) == 48
