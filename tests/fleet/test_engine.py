"""Tests for cohort execution, the hard deadline, and the result codec."""

import json

import pytest

from repro.fleet import CohortResult, FleetSpec, FleetUnitSpec, run_cohort
from repro.matrix.cache import ResultCache, decode_result, encode_result


def small_spec(**overrides):
    kwargs = dict(users=8, cohorts=2, environment="LAN",
                  arrival_rate=50.0, think_time=0.0, pages_per_user=1,
                  rounds=1, max_sim_time=60.0)
    kwargs.update(overrides)
    return FleetSpec(**kwargs)


def equal_unit(spec, cohort=0):
    share = spec.backbone_bandwidth() / spec.cohorts
    return FleetUnitSpec(fleet=spec, cohort=cohort,
                         shares=(share,) * spec.n_epochs)


@pytest.fixture(scope="module")
def cohort_result():
    return run_cohort(equal_unit(small_spec()), seed=0)


def test_run_cohort_completes_every_page(cohort_result):
    assert cohort_result.users == 4
    assert len(cohort_result.sessions) == 4
    assert cohort_result.errors == 0
    assert len(cohort_result.page_times) == 4
    assert all(elapsed > 0 for elapsed in cohort_result.page_times)
    assert cohort_result.packets > 0
    assert sum(cohort_result.epoch_bytes_down) > 0
    assert cohort_result.requests_served > 0


def test_run_cohort_is_deterministic(cohort_result):
    again = run_cohort(equal_unit(small_spec()), seed=0)
    assert again == cohort_result


def test_codec_round_trips_through_json(cohort_result):
    payload = encode_result(cohort_result)
    assert payload["__kind__"] == "fleet-cohort"
    revived = decode_result(json.loads(json.dumps(payload)))
    assert isinstance(revived, CohortResult)
    assert revived == cohort_result


def test_cohort_results_ride_the_result_cache(tmp_path, cohort_result):
    cache = ResultCache(tmp_path / "cache")
    unit = equal_unit(small_spec())
    cache.put(unit, 0, cohort_result)
    assert cache.get(unit, 0) == cohort_result
    # A different share schedule is a different cache identity.
    other = FleetUnitSpec(fleet=unit.fleet, cohort=0,
                          shares=tuple(2 * s for s in unit.shares))
    assert cache.get(other, 0) is None


def test_finite_capacity_parks_connections():
    spec = small_spec(users=6, cohorts=1, server_capacity=1,
                      arrival_rate=1000.0)
    congested = run_cohort(equal_unit(spec), seed=0)
    assert congested.queue_waits
    assert all(wait > 0 for wait in congested.queue_waits)
    unbounded = run_cohort(equal_unit(spec.replace(server_capacity=None)),
                           seed=0)
    assert unbounded.queue_waits == ()


def test_hard_deadline_counts_unfinished_pages_as_errors():
    spec = small_spec(environment="WAN", users=4, cohorts=1,
                      arrival_rate=1000.0, max_sim_time=1.0)
    result = run_cohort(equal_unit(spec), seed=0)
    # A WAN page load cannot finish inside one simulated second, so the
    # deadline fires mid-flight and the totals must still reconcile.
    assert result.sim_time <= spec.max_sim_time
    assert result.errors > 0
    for session in result.sessions:
        assert session.pages_started == (len(session.page_times)
                                         + session.errors)
