"""Tests for the fleet population spec and its compiled schedules."""

import json

import pytest

from repro.fleet import (FLEET_CACHE_KEY_FIELDS, FleetSpec, FleetUnitSpec)


def small_spec(**overrides):
    kwargs = dict(users=8, cohorts=2, environment="LAN",
                  arrival_rate=50.0, think_time=0.0, pages_per_user=1,
                  rounds=1, max_sim_time=60.0)
    kwargs.update(overrides)
    return FleetSpec(**kwargs)


def test_canonicalizes_names():
    spec = small_spec(environment="wan", server="apache",
                      modes=(("pipelined", 1.0),))
    assert spec.environment == "WAN"
    assert spec.server == "Apache"
    assert spec.modes == (("HTTP/1.1 Pipelined", 1.0),)


def test_rejects_multiplexed_modes():
    for mode in ("mux", "mux-push", "sharded"):
        with pytest.raises(ValueError):
            small_spec(modes=((mode, 1.0),))


@pytest.mark.parametrize("overrides", [
    {"users": 0},
    {"cohorts": 0},
    {"cohorts": 9},            # more cohorts than users
    {"arrival_rate": 0.0},
    {"think_time": -1.0},
    {"pages_per_user": 0},
    {"server_capacity": 0},
    {"backbone_bps": 0.0},
    {"epoch": 0.0},
    {"rounds": 0},
    {"max_sim_time": 0.0},
    {"modes": ()},
    {"modes": (("HTTP/1.1", 0.0),)},
])
def test_validation(overrides):
    with pytest.raises(ValueError):
        small_spec(**overrides)


def test_population_is_deterministic():
    spec = FleetSpec(users=40, cohorts=4, think_time=3.0,
                     pages_per_user=3, seed=7)
    first = spec.compile_population()
    second = spec.compile_population()
    assert first == second
    # An identically-constructed spec compiles identically too.
    assert spec.replace().compile_population() == first
    # A different seed must change the schedule.
    assert spec.replace(seed=8).compile_population() != first


def test_population_shape():
    spec = FleetSpec(users=30, cohorts=4, think_time=2.0,
                     pages_per_user=3)
    plans = spec.compile_population()
    assert len(plans) == 30
    arrivals = [plan.arrival for plan in plans]
    assert arrivals == sorted(arrivals)
    assert all(arrival > 0 for arrival in arrivals)
    for plan in plans:
        assert plan.cohort == plan.index % 4
        assert len(plan.think_times) == 2
        assert all(think >= 0 for think in plan.think_times)
        assert plan.mode in {name for name, _ in spec.modes}


def test_zero_think_time_draws_nothing():
    plans = small_spec(think_time=0.0, pages_per_user=3,
                       users=6).compile_population()
    assert all(plan.think_times == (0.0, 0.0) for plan in plans)


def test_cohort_plans_partition_population():
    spec = FleetSpec(users=21, cohorts=4)
    merged = sorted((plan for cohort in range(4)
                     for plan in spec.cohort_plans(cohort)),
                    key=lambda plan: plan.index)
    assert merged == spec.compile_population()
    with pytest.raises(ValueError):
        spec.cohort_plans(4)


def test_canonical_dict_covers_every_cache_key_field():
    spec = small_spec()
    payload = spec.canonical_dict()
    assert set(payload) == set(FLEET_CACHE_KEY_FIELDS)
    # The identity must be JSON-stable.
    dumped = json.dumps(payload, sort_keys=True)
    assert json.dumps(spec.canonical_dict(), sort_keys=True) == dumped


def test_unit_quantizes_shares():
    spec = small_spec()
    n = spec.n_epochs
    unit = FleetUnitSpec(fleet=spec, cohort=0,
                         shares=(12345.6,) * n)
    assert unit.shares == (12346.0,) * n
    assert unit.canonical_dict()["shares"] == [12346] * n


def test_unit_validation():
    spec = small_spec()
    good = (1000.0,) * spec.n_epochs
    with pytest.raises(ValueError):
        FleetUnitSpec(fleet=spec, cohort=2, shares=good)
    with pytest.raises(ValueError):
        FleetUnitSpec(fleet=spec, cohort=0, shares=good + (1000.0,))
    with pytest.raises(ValueError):
        FleetUnitSpec(fleet=spec, cohort=0,
                      shares=(0.0,) * spec.n_epochs)


def test_unit_duck_types_the_matrix_surface():
    spec = small_spec(seed=3)
    unit = FleetUnitSpec(fleet=spec, cohort=1,
                         shares=(1e6,) * spec.n_epochs)
    assert unit.seeds == (3,)
    assert unit.runs == 1
    assert unit.max_sim_time == spec.max_sim_time
    assert "cohort 1" in unit.label
    assert unit.canonical_dict()["kind"] == "fleet-cohort"
    # Different shares are different cache identities.
    other = FleetUnitSpec(fleet=spec, cohort=1,
                          shares=(2e6,) * spec.n_epochs)
    assert unit.canonical_dict() != other.canonical_dict()
