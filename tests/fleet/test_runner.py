"""Tests for the fleet driver: water-fill, job-count and resume identity."""

import math

import pytest

from repro.core.runner import nearest_rank
from repro.fleet import FleetResult, FleetSpec, run_fleet
from repro.fleet.runner import _quantize, _rebalance, _waterfill
from repro.matrix import MatrixRunner
from repro.matrix.cache import ResultCache
from repro.matrix.journal import RunJournal


def small_spec(**overrides):
    kwargs = dict(users=12, cohorts=2, environment="LAN",
                  arrival_rate=20.0, think_time=0.0, pages_per_user=1,
                  rounds=2, max_sim_time=120.0)
    kwargs.update(overrides)
    return FleetSpec(**kwargs)


# ----------------------------------------------------------------------
# The analytic share exchange
# ----------------------------------------------------------------------

def test_waterfill_grants_bounded_demands():
    assert _waterfill(100.0, [10.0, 20.0, 30.0]) == [10.0, 20.0, 30.0]


def test_waterfill_splits_remainder_among_saturated():
    shares = _waterfill(60.0, [math.inf, math.inf, 10.0])
    assert shares == [25.0, 25.0, 10.0]
    assert _waterfill(90.0, [math.inf] * 3) == [30.0] * 3


def test_waterfill_is_deterministic():
    demands = [math.inf, 7.0, math.inf, 3.0, 11.0]
    first = _waterfill(40.0, demands)
    assert all(_waterfill(40.0, demands) == first for _ in range(5))


def test_quantize_floors_at_one_bit():
    assert _quantize(0.2) == 1.0
    assert _quantize(1e6 + 0.4) == 1e6


def test_rebalance_keeps_share_for_quarantined_cohort():
    spec = small_spec(cohorts=2, users=12)
    old = [(5e6,) * spec.n_epochs, (3e6,) * spec.n_epochs]
    rebalanced = _rebalance(spec, old, [None, None],
                            backbone=8e6, bits_per_byte=8.0)
    assert rebalanced == old


# ----------------------------------------------------------------------
# Population-level determinism: the fleet's core contract
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def serial_result():
    return run_fleet(small_spec())


def test_fleet_serves_every_user(serial_result):
    assert serial_result.users_simulated == 12
    assert serial_result.errors == 0
    assert len(serial_result.page_times) == 12
    assert not serial_result.failures
    assert len(serial_result.cohorts) == 2
    assert 0.0 < serial_result.fairness_index <= 1.0


def test_jobs_do_not_change_results(serial_result):
    with MatrixRunner(jobs=2) as runner:
        parallel = run_fleet(small_spec(), runner=runner)
    assert parallel.cohorts == serial_result.cohorts
    assert parallel.final_shares == serial_result.final_shares
    assert parallel.page_times == serial_result.page_times
    for p in (50, 95, 99):
        assert parallel.percentile(p) == serial_result.percentile(p)


def test_journal_resume_is_byte_identical(tmp_path, serial_result):
    spec = small_spec()
    with MatrixRunner(journal=RunJournal("fleet-test",
                                         tmp_path)) as runner:
        first = run_fleet(spec, runner=runner)
        assert runner.stats.journal_hits == 0
    # A resumed run replays every unit from the journal: zero
    # simulation, byte-identical population statistics.
    with MatrixRunner(journal=RunJournal("fleet-test",
                                         tmp_path)) as runner:
        resumed = run_fleet(spec, runner=runner)
        assert runner.stats.journal_hits == spec.cohorts * spec.rounds
        assert runner.stats.sim_runs == 0
    assert resumed.cohorts == first.cohorts == serial_result.cohorts
    assert resumed.final_shares == first.final_shares
    assert resumed.page_times == serial_result.page_times


def test_cache_replay_is_byte_identical(tmp_path, serial_result):
    spec = small_spec()
    cache = ResultCache(tmp_path / "cache")
    with MatrixRunner(cache=cache) as runner:
        first = run_fleet(spec, runner=runner)
    with MatrixRunner(cache=cache) as runner:
        replayed = run_fleet(spec, runner=runner)
        assert runner.stats.cache_hits == spec.cohorts * spec.rounds
        assert runner.stats.sim_runs == 0
    assert replayed.cohorts == first.cohorts == serial_result.cohorts
    assert replayed.page_times == serial_result.page_times


# ----------------------------------------------------------------------
# Aggregation edge cases and reporting
# ----------------------------------------------------------------------

def test_empty_fleet_result_yields_nan():
    spec = small_spec()
    empty = FleetResult(spec=spec, cohorts=(None, None), failures=(),
                        final_shares=((1.0,), (1.0,)))
    assert math.isnan(empty.percentile(50))
    assert math.isnan(empty.mean_page_time)
    assert math.isnan(empty.fairness_index)
    assert empty.users_simulated == 0


def test_nearest_rank_percentiles():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert nearest_rank(values, 50) == 3.0
    assert nearest_rank(values, 99) == 5.0
    assert nearest_rank(values, 0) == 1.0
    assert math.isnan(nearest_rank([], 50))


def test_format_fleet_report(serial_result):
    from repro.analysis.report import format_fleet_report
    text = format_fleet_report(serial_result)
    assert "Fleet population: 12 users" in text
    assert "p50" in text and "p99" in text
    assert "Jain" in text
    for mode_name, _ in serial_result.spec.modes:
        assert mode_name in text


def test_fleet_cli(capsys):
    from repro.__main__ import main
    assert main(["fleet", "--users", "8", "--cohorts", "2",
                 "--environment", "LAN", "--arrival-rate", "50",
                 "--think-time", "0", "--pages-per-user", "1",
                 "--rounds", "1", "--max-sim-time", "60"]) == 0
    out = capsys.readouterr().out
    assert "Fleet population: 8 users" in out
    assert "p50" in out
