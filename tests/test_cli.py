"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_run_cell(capsys):
    assert main(["run", "--mode", "pipelined", "--scenario",
                 "revalidate", "--environment", "LAN",
                 "--server", "apache"]) == 0
    out = capsys.readouterr().out
    assert "packets:" in out
    assert "HTTP/1.1 Pipelined" in out


def test_run_unknown_mode(capsys):
    assert main(["run", "--mode", "spdy"]) == 2
    assert "unknown mode" in capsys.readouterr().err


def test_table_5(capsys):
    assert main(["table", "5", "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "Pa(paper)" in out


def test_table_3(capsys):
    assert main(["table", "3", "--runs", "1"]) == 0
    assert "Table 3" in capsys.readouterr().out


def test_table_out_of_range(capsys):
    assert main(["table", "12"]) == 2


def test_modem(capsys):
    assert main(["modem", "--runs", "1"]) == 0
    assert "Modem compression" in capsys.readouterr().out


def test_content(capsys):
    assert main(["content"]) == 0
    out = capsys.readouterr().out
    assert "static PNG total" in out


def test_site(capsys):
    assert main(["site"]) == 0
    out = capsys.readouterr().out
    assert "/home.html" in out
    assert "/gifs/hero.gif" in out
    assert "TOTAL" in out


def test_help_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
