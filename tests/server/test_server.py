"""Integration tests for the simulated HTTP server over simnet."""

import pytest

from repro.content import build_microscape_site
from repro.http import HTTP10, HTTP11, Headers, Request, ResponseParser
from repro.server import (APACHE, APACHE_12B2, JIGSAW, NAGLE_STALL_SERVER,
                          NAIVE_CLOSE_SERVER, ResourceStore, SimHttpServer)
from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork


@pytest.fixture(scope="module")
def store():
    return ResourceStore.from_site(build_microscape_site())


class RawClient:
    """A minimal hand-driven client for poking the server."""

    def __init__(self, net, methods):
        self.parser = ResponseParser()
        for method in methods:
            self.parser.expect(method)
        self.responses = []
        self.eof = False
        self.reset = False
        self.conn = net.client.connect(SERVER_HOST, 80)
        self.conn.set_nodelay(True)
        self.conn.on_data = self._data
        self.conn.on_eof = lambda c: setattr(self, "eof", True)
        self.conn.on_reset = lambda c: setattr(self, "reset", True)

    def _data(self, _conn, data):
        self.responses.extend(self.parser.feed(data))

    def send_requests(self, *requests):
        self.conn.send(b"".join(r.to_bytes() for r in requests))


def request(url, version=HTTP11, headers=None, method="GET"):
    return Request(method, url, version, Headers(
        headers or [("Host", SERVER_HOST)]))


def serve(profile, store):
    net = TwoHostNetwork(LAN)
    server = SimHttpServer(net.sim, net.server, store, profile)
    return net, server


def test_single_get(store):
    net, server = serve(APACHE, store)
    client = RawClient(net, ["GET"])
    client.send_requests(request("/home.html"))
    net.run()
    assert len(client.responses) == 1
    assert client.responses[0].status == 200
    assert client.responses[0].body == store.get("/home.html").body
    assert server.requests_served == 1


def test_pipelined_requests_one_connection(store):
    urls = ["/home.html", "/gifs/bullet0.gif", "/gifs/hero.gif"]
    net, server = serve(APACHE, store)
    client = RawClient(net, ["GET"] * 3)
    client.send_requests(*[request(u) for u in urls])
    net.run()
    assert [r.status for r in client.responses] == [200, 200, 200]
    for url, response in zip(urls, client.responses):
        assert response.body == store.get(url).body
    assert server.connections_accepted == 1


def test_response_buffering_aggregates_304s(store):
    """Cache-validation responses share segments thanks to the server's
    response buffer (the paper's server-side aggregation point)."""
    net, _ = serve(APACHE, store)
    urls = [u for u in store.urls() if u.endswith(".gif")][:10]
    conditional = [request(u, headers=[("Host", SERVER_HOST),
                                       ("If-None-Match",
                                        store.get(u).etag)])
                   for u in urls]
    client = RawClient(net, ["GET"] * len(urls))
    client.send_requests(*conditional)
    net.run()
    assert all(r.status == 304 for r in client.responses)
    data_segments = [r for r in net.trace.records
                     if r.src == SERVER_HOST and r.payload_len]
    # Ten 304s (~150 B each) must not take ten segments.
    assert len(data_segments) <= 3


def test_unbuffered_server_sends_more_segments(store):
    urls = [u for u in store.urls() if u.endswith(".gif")][:10]

    def count_segments(profile):
        net, _ = serve(profile, store)
        client = RawClient(net, ["GET"] * len(urls))
        client.send_requests(*[
            request(u, headers=[("Host", SERVER_HOST),
                                ("If-None-Match", store.get(u).etag)])
            for u in urls])
        net.run()
        assert all(r.status == 304 for r in client.responses)
        return len([r for r in net.trace.records
                    if r.src == SERVER_HOST and r.payload_len])

    assert count_segments(APACHE_12B2) > count_segments(APACHE)


def test_max_requests_per_connection_closes_carefully(store):
    """Apache 1.2b2 closes after 5 responses — but half-closes, so the
    already-pipelined requests are ACKed, not RST."""
    urls = [u for u in store.urls()][:8]
    net, _ = serve(APACHE_12B2, store)
    client = RawClient(net, ["GET"] * len(urls))
    client.send_requests(*[request(u) for u in urls])
    net.run()
    assert len(client.responses) == 5
    assert client.responses[4].headers.contains_token("Connection",
                                                      "close")
    assert client.eof
    assert not client.reset


def test_naive_close_triggers_rst_against_pipelined_client(store):
    """The paper's Connection Management scenario: a server closing
    both halves after its request cap RSTs the client's pipeline."""
    urls = [u for u in store.urls()][:15]
    net, _ = serve(NAIVE_CLOSE_SERVER, store)
    client = RawClient(net, ["GET"] * len(urls))
    # Send in two batches so data arrives after the server closed.
    client.send_requests(*[request(u) for u in urls[:6]])
    net.run()
    if not client.reset:
        client.conn.send(request(urls[6]).to_bytes())
        net.run()
    assert client.reset
    assert len(client.responses) <= 6


def test_http10_closes_after_response(store):
    net, _ = serve(APACHE, store)
    client = RawClient(net, ["GET"])
    client.send_requests(request("/gifs/bullet0.gif", version=HTTP10))
    net.run()
    assert client.responses[0].status == 200
    assert client.eof


def test_http10_keepalive_honored(store):
    net, server = serve(APACHE, store)
    client = RawClient(net, ["GET", "GET"])
    ka = [("Host", SERVER_HOST), ("Connection", "Keep-Alive")]
    client.send_requests(request("/gifs/bullet0.gif", HTTP10, ka))
    net.run()
    assert not client.eof
    client.send_requests(request("/gifs/bullet1.gif", HTTP10, ka))
    net.run()
    assert len(client.responses) == 2
    assert server.connections_accepted == 1


def test_jigsaw_closes_keepalive_after_head(store):
    net, _ = serve(JIGSAW, store)
    client = RawClient(net, ["HEAD"])
    ka = [("Host", SERVER_HOST), ("Connection", "Keep-Alive")]
    client.send_requests(request("/gifs/bullet0.gif", HTTP10, ka,
                                 method="HEAD"))
    net.run()
    assert client.eof
    assert not client.responses[0].headers.contains_token(
        "Connection", "keep-alive")


def test_eof_from_client_drains_then_closes(store):
    net, _ = serve(APACHE, store)
    client = RawClient(net, ["GET"])
    client.send_requests(request("/gifs/hero.gif"))
    client.conn.close()     # half-close: responses must still arrive
    net.run()
    assert client.responses[0].body == store.get("/gifs/hero.gif").body
    assert client.eof


def test_malformed_request_gets_400(store):
    net, _ = serve(APACHE, store)
    client = RawClient(net, ["GET"])
    client.conn.send(b"THIS IS NOT HTTP\r\n\r\n")
    net.run()
    assert client.responses and client.responses[0].status == 400


def test_nagle_stall_server_is_slower_than_fixed(store):
    """The Nagle x delayed-ACK interaction: split small writes with
    Nagle on stall dramatically versus TCP_NODELAY."""
    import dataclasses

    def elapsed(profile):
        net, _ = serve(profile, store)
        urls = [u for u in store.urls() if u.endswith(".gif")][:6]
        client = RawClient(net, ["GET"] * len(urls))
        client.send_requests(*[
            request(u, headers=[("Host", SERVER_HOST),
                                ("If-None-Match", store.get(u).etag)])
            for u in urls])
        net.run()
        assert all(r.status == 304 for r in client.responses)
        return net.sim.now

    fixed = dataclasses.replace(NAGLE_STALL_SERVER, nodelay=True)
    assert elapsed(NAGLE_STALL_SERVER) > 3 * elapsed(fixed)


def test_server_cpu_serializes_across_connections(store):
    net, _ = serve(JIGSAW, store)
    clients = [RawClient(net, ["GET"]) for _ in range(4)]
    for client in clients:
        client.send_requests(request("/gifs/bullet0.gif"))
    net.run()
    # 4 connections x (8 ms accept + ~7 ms request) of serial CPU.
    assert net.sim.now >= 0.050
