"""The Keep-Alive-through-a-proxy pathology (why HTTP/1.1 != Keep-Alive).

The paper cites "a problem discovered when Keep-Alive is used with more
than one proxy between a client and a server" as the reason HTTP/1.1's
persistent connections differ from the HTTP/1.0 Keep-Alive extension.
These tests reproduce the deadlock against a blind 1.0 proxy and show
the HTTP/1.1 hop-by-hop rules fixing it.
"""

import pytest

from repro.content import build_microscape_site
from repro.http import (HTTP10, HTTP11, Headers, Request, ResponseParser)
from repro.server import APACHE, ResourceStore, SimHttpServer
from repro.server.proxy import SimHttpProxy
from repro.simnet import LAN
from repro.simnet.network import ChainNetwork, PROXY_HOST, SERVER_HOST


@pytest.fixture(scope="module")
def store():
    return ResourceStore.from_site(build_microscape_site())


class ProxyClient:
    """Hand-driven client talking to the proxy."""

    def __init__(self, net, methods=("GET",)):
        self.parser = ResponseParser()
        for method in methods:
            self.parser.expect(method)
        self.responses = []
        self.eof = False
        self.eof_at = None
        self.net = net
        self.conn = net.client.connect(PROXY_HOST, 8080)
        self.conn.set_nodelay(True)
        self.conn.on_data = lambda c, d: self.responses.extend(
            self.parser.feed(d))
        self.conn.on_eof = self._on_eof

    def _on_eof(self, _conn):
        self.eof = True
        self.eof_at = self.net.sim.now
        final = self.parser.eof()
        if final is not None:
            self.responses.append(final)

    def send(self, *requests):
        self.conn.send(b"".join(r.to_bytes() for r in requests))


def build_chain(store, mode, idle_timeout=15.0):
    net = ChainNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    proxy = SimHttpProxy(net.sim, net.proxy_client_side,
                         net.proxy_server_side, SERVER_HOST,
                         mode=mode, idle_timeout=idle_timeout)
    return net, proxy


def keepalive_request(url):
    return Request("GET", url, HTTP10, Headers([
        ("Host", SERVER_HOST),
        ("Connection", "Keep-Alive")]))


def test_blind_proxy_forwards_keepalive_and_hangs(store):
    """The historical bug: the origin keeps the upstream connection
    open, the blind proxy waits for close, everyone stalls until the
    proxy's idle timeout."""
    net, proxy = build_chain(store, "blind", idle_timeout=15.0)
    client = ProxyClient(net)
    client.send(keepalive_request("/gifs/bullet0.gif"))
    net.run()
    # The response body does arrive eventually...
    assert len(client.responses) == 1
    assert client.responses[0].body == store.get("/gifs/bullet0.gif").body
    # ...but only after the idle timeout fired.
    assert proxy.idle_timeouts == 1
    assert client.eof_at >= 15.0


def test_blind_proxy_fast_without_keepalive(store):
    """Without the forwarded Keep-Alive the origin closes and the blind
    proxy completes promptly — the header is the whole problem."""
    net, proxy = build_chain(store, "blind")
    client = ProxyClient(net)
    client.send(Request("GET", "/gifs/bullet0.gif", HTTP10,
                        Headers([("Host", SERVER_HOST)])))
    net.run()
    assert len(client.responses) == 1
    assert proxy.idle_timeouts == 0
    assert client.eof_at < 1.0


def test_hop_by_hop_proxy_strips_connection_header(store):
    """The HTTP/1.1 fix: Connection is hop-by-hop; no deadlock."""
    net, proxy = build_chain(store, "hop_by_hop")
    client = ProxyClient(net)
    client.send(keepalive_request("/gifs/bullet0.gif"))
    net.run()
    assert len(client.responses) == 1
    assert client.responses[0].body == store.get("/gifs/bullet0.gif").body
    assert proxy.idle_timeouts == 0
    assert net.sim.now < 1.0
    assert client.responses[0].headers.get("Via") is not None


def test_hop_by_hop_proxy_relays_http11_pipeline(store, ):
    """An HTTP/1.1 proxy relays a pipelined batch without stalls."""
    urls = ["/home.html", "/gifs/bullet0.gif", "/gifs/hero.gif"]
    net, proxy = build_chain(store, "hop_by_hop")
    client = ProxyClient(net, methods=["GET"] * len(urls))
    client.send(*[Request("GET", u, HTTP11,
                          Headers([("Host", SERVER_HOST)]))
                  for u in urls])
    net.run()
    assert [r.status for r in client.responses] == [200, 200, 200]
    for url, response in zip(urls, client.responses):
        assert response.body == store.get(url).body
    assert proxy.requests_forwarded == 3
    assert net.sim.now < 2.0


def test_blind_proxy_body_integrity_large_object(store):
    """Close-delimited relaying still delivers every byte."""
    net, _ = build_chain(store, "blind")
    client = ProxyClient(net)
    client.send(Request("GET", "/gifs/hero.gif", HTTP10,
                        Headers([("Host", SERVER_HOST)])))
    net.run()
    assert client.responses[0].body == store.get("/gifs/hero.gif").body


def test_proxy_rejects_unknown_mode(store):
    net = ChainNetwork(LAN)
    with pytest.raises(ValueError):
        SimHttpProxy(net.sim, net.proxy_client_side,
                     net.proxy_server_side, SERVER_HOST, mode="magic")
