"""Unit tests for resources and response construction."""

import pytest

from repro.content import build_microscape_site
from repro.http import (HTTP10, HTTP11, Headers, Request, deflate_decode)
from repro.server import APACHE, JIGSAW, Resource, ResourceStore
from repro.server.static import build_response


@pytest.fixture(scope="module")
def store():
    return ResourceStore.from_site(build_microscape_site())


def get(url, headers=None, method="GET", version=HTTP11):
    return Request(method, url, version, Headers(headers or []))


def test_store_holds_all_site_objects(store):
    assert len(store) == 43
    assert "/home.html" in store
    assert store.get("/home.html").content_type == "text/html"


def test_html_is_precompressed(store):
    resource = store.get("/home.html")
    assert resource.deflate_body is not None
    assert len(resource.deflate_body) < len(resource.body) / 2
    assert deflate_decode(resource.deflate_body) == resource.body


def test_images_not_precompressed(store):
    resource = store.get("/gifs/hero.gif")
    assert resource.deflate_body is None


def test_etag_is_stable_and_quoted(store):
    a = store.get("/home.html").etag
    fresh = ResourceStore.from_site(build_microscape_site())
    assert fresh.get("/home.html").etag == a
    assert a.startswith('"') and a.endswith('"')


def test_basic_200(store):
    response = build_response(store, get("/home.html"), APACHE)
    assert response.status == 200
    assert response.headers.get("Content-Type") == "text/html"
    assert response.headers.get_int("Content-Length") == len(response.body)
    assert response.headers.get("ETag")
    assert response.headers.get("Last-Modified")


def test_404(store):
    response = build_response(store, get("/nope.gif"), APACHE)
    assert response.status == 404


def test_405(store):
    response = build_response(store, get("/home.html", method="POST"),
                              APACHE)
    assert response.status == 405


def test_head_omits_body_on_wire(store):
    response = build_response(store, get("/home.html", method="HEAD"),
                              APACHE)
    assert response.status == 200
    assert response.body_on_wire() == b""
    assert response.headers.get_int("Content-Length") > 0


def test_304_on_matching_etag(store):
    etag = store.get("/home.html").etag
    response = build_response(
        store, get("/home.html", [("If-None-Match", etag)]), APACHE)
    assert response.status == 304


def test_200_on_stale_etag(store):
    response = build_response(
        store, get("/home.html", [("If-None-Match", '"stale"')]), APACHE)
    assert response.status == 200


def test_304_on_date(store):
    date = store.get("/home.html").last_modified
    response = build_response(
        store, get("/home.html", [("If-Modified-Since", date)]), APACHE)
    assert response.status == 304


def test_jigsaw_hides_last_modified_but_validates_dates(store):
    response = build_response(store, get("/home.html"), JIGSAW)
    assert "Last-Modified" not in response.headers
    date = store.get("/home.html").last_modified
    validation = build_response(
        store, get("/home.html", [("If-Modified-Since", date)]), JIGSAW)
    assert validation.status == 304


def test_jigsaw_verbose_304(store):
    etag = store.get("/home.html").etag
    response = build_response(
        store, get("/home.html", [("If-None-Match", etag)]), JIGSAW)
    assert response.status == 304
    assert response.headers.get("Content-Type") == "text/html"
    assert response.to_bytes().endswith(b"\r\n\r\n")   # still bodyless


def test_deflate_negotiation(store):
    response = build_response(
        store, get("/home.html", [("Accept-Encoding", "deflate")]),
        APACHE)
    assert response.headers.get("Content-Encoding") == "deflate"
    assert deflate_decode(response.body) == store.get("/home.html").body


def test_no_deflate_without_accept(store):
    response = build_response(store, get("/home.html"), APACHE)
    assert "Content-Encoding" not in response.headers


def test_gifs_never_deflated(store):
    response = build_response(
        store, get("/gifs/hero.gif", [("Accept-Encoding", "deflate")]),
        APACHE)
    assert "Content-Encoding" not in response.headers


def test_range_request(store):
    response = build_response(
        store, get("/gifs/hero.gif", [("Range", "bytes=0-99")]), APACHE)
    assert response.status == 206
    assert len(response.body) == 100
    assert response.body == store.get("/gifs/hero.gif").body[:100]
    assert response.headers.get("Content-Range").startswith("bytes 0-99/")


def test_unsatisfiable_range(store):
    size = len(store.get("/gifs/bullet0.gif").body)
    response = build_response(
        store, get("/gifs/bullet0.gif",
                   [("Range", f"bytes={size + 10}-{size + 20}")]), APACHE)
    assert response.status == 416


def test_if_range_mismatch_serves_full_entity(store):
    response = build_response(
        store, get("/gifs/hero.gif", [("Range", "bytes=0-99"),
                                      ("If-Range", '"stale"')]), APACHE)
    assert response.status == 200
    assert len(response.body) == len(store.get("/gifs/hero.gif").body)


def test_http10_request_gets_http10_response(store):
    response = build_response(store, get("/home.html", version=HTTP10),
                              APACHE)
    assert response.version == HTTP10


def test_validation_combined_with_range_poor_mans_multiplexing(store):
    """The paper's idiom: If-None-Match + If-Range + Range in one
    request — 304 when unchanged, 206 of the prefix when changed."""
    resource = store.get("/gifs/hero.gif")
    unchanged = build_response(
        store, get("/gifs/hero.gif", [("If-None-Match", resource.etag),
                                      ("If-Range", resource.etag),
                                      ("Range", "bytes=0-511")]), APACHE)
    assert unchanged.status == 304
    changed = build_response(
        store, get("/gifs/hero.gif", [("If-None-Match", '"old"'),
                                      ("If-Range", resource.etag),
                                      ("Range", "bytes=0-511")]), APACHE)
    assert changed.status == 206
    assert len(changed.body) == 512
