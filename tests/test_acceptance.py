"""Acceptance tests: DESIGN.md's headline criteria, end to end.

These are the "shape" criteria the reproduction is graded on (DESIGN.md
§4), each run at full fidelity through the public API.  The benchmark
suite asserts the same properties per table; this module is the single
place a reviewer can point at and say "the reproduction holds".
"""

import pytest

from repro.analysis import PROTOCOL_TABLES
from repro.content import (build_microscape_site, banner_replacement,
                           convert_site_to_png, css_replacement_analysis)
from repro.core import (FIRST_TIME, HTTP10_MODE, HTTP11_PERSISTENT,
                        HTTP11_PIPELINED, HTTP11_PIPELINED_COMPRESSED,
                        REVALIDATE, run_experiment)
from repro.server import APACHE, JIGSAW
from repro.simnet import ENVIRONMENTS, LAN, PPP, WAN


@pytest.fixture(scope="module")
def wan_cells():
    cells = {}
    for mode in (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED,
                 HTTP11_PIPELINED_COMPRESSED):
        for scenario in (FIRST_TIME, REVALIDATE):
            cells[(mode.name, scenario)] = run_experiment(
                mode, scenario, environment=WAN, profile=APACHE, seed=3)
    return cells


def test_pipelining_packet_savings_all_environments():
    """'At least a factor of two, and sometimes as much as a factor of
    ten, in terms of packets transmitted' — every environment tested."""
    for environment in (LAN, WAN):
        for profile in (APACHE, JIGSAW):
            http10 = run_experiment(HTTP10_MODE, FIRST_TIME,
                                    environment=environment,
                                    profile=profile, seed=1)
            pipelined = run_experiment(HTTP11_PIPELINED, FIRST_TIME,
                                       environment=environment,
                                       profile=profile, seed=1)
            assert http10.packets / pipelined.packets >= 2.0
            reval10 = run_experiment(HTTP10_MODE, REVALIDATE,
                                     environment=environment, profile=profile,
                                     seed=1)
            revalpl = run_experiment(HTTP11_PIPELINED, REVALIDATE,
                                     environment=environment, profile=profile,
                                     seed=1)
            assert reval10.packets / revalpl.packets >= 10.0


def test_persistent_without_pipelining_is_slower(wan_cells):
    """The paper's sharpest lesson, preserved."""
    persistent = wan_cells[("HTTP/1.1", FIRST_TIME)]
    http10 = wan_cells[("HTTP/1.0", FIRST_TIME)]
    pipelined = wan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    assert persistent.elapsed > http10.elapsed
    assert pipelined.elapsed < http10.elapsed
    assert persistent.packets < http10.packets


def test_first_retrieval_bandwidth_savings_few_percent(wan_cells):
    http10 = wan_cells[("HTTP/1.0", FIRST_TIME)]
    pipelined = wan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    saving = 1 - pipelined.payload_bytes / http10.payload_bytes
    assert 0.0 <= saving <= 0.15


def test_compression_adds_packet_and_payload_savings(wan_cells):
    plain = wan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    compressed = wan_cells[("HTTP/1.1 Pipelined w. compression",
                            FIRST_TIME)]
    assert compressed.packets < plain.packets * 0.92
    assert compressed.payload_bytes < plain.payload_bytes * 0.88
    assert compressed.elapsed <= plain.elapsed


def test_ppp_is_bandwidth_dominated():
    result = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=PPP,
                            profile=APACHE,
                            seed=1)
    floor = result.payload_bytes * 8.3 / 28_800
    assert result.elapsed > floor * 0.75
    assert result.elapsed < floor * 1.35


def test_png_and_mng_shape():
    report = convert_site_to_png(build_microscape_site())
    static_saving = report.static_saved / report.static_gif_total
    assert 0.04 <= static_saving <= 0.18          # paper: 10.8%
    animation_saving = report.animation_saved / \
        report.animation_gif_total
    assert 0.25 <= animation_saving <= 0.50        # paper: 34.7%
    assert all(r.saved < 0 for r in report.static
               if r.gif_bytes < 200)               # tiny ones grow


def test_css_figure1_shape():
    replacement = banner_replacement("solutions")
    assert 682 / replacement.byte_size >= 4.0
    report = css_replacement_analysis(build_microscape_site())
    assert report.requests_saved >= 20
    assert report.net_bytes_saved > 10_000


def test_every_paper_cell_within_factor_two_on_packets():
    """Cell-by-cell: measured packet counts stay within 2x of the
    paper's published values across all six protocol tables."""
    for (server, environment), cells in PROTOCOL_TABLES.items():
        profile = APACHE if server == "Apache" else JIGSAW
        for (mode_name, scenario), expected in cells.items():
            mode = next(m for m in (HTTP10_MODE, HTTP11_PERSISTENT,
                                    HTTP11_PIPELINED,
                                    HTTP11_PIPELINED_COMPRESSED)
                        if m.name == mode_name)
            cell = run_experiment(mode, scenario,
                                  environment=ENVIRONMENTS[environment],
                                  profile=profile,
                                  seed=2)
            ratio = cell.packets / expected.packets
            assert 0.5 <= ratio <= 2.0, (
                server, environment, mode_name, scenario,
                cell.packets, expected.packets)
