"""Tests for the xplot export and ASCII time-sequence rendering."""

import pytest

from repro.analysis.xplot import (ascii_time_sequence, write_xplot,
                                  xplot_document)
from repro.core import FIRST_TIME, HTTP11_PIPELINED, run_experiment
from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork
from repro.server import APACHE


@pytest.fixture(scope="module")
def traced_run():
    from repro.content import build_microscape_site
    from repro.server import ResourceStore, SimHttpServer
    from repro.client.robot import ClientConfig, Robot
    site = build_microscape_site()
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, ResourceStore.from_site(site),
                  APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  ClientConfig(pipeline=True))
    robot.fetch(site.html_url)
    net.run()
    return net


def test_xplot_document_structure(traced_run):
    doc = xplot_document(traced_run.trace, SERVER_HOST)
    assert doc.startswith("double double")
    assert "title" in doc
    assert doc.rstrip().endswith("go")
    assert doc.count("line ") > 50       # the ~130 data segments


def test_write_xplot(tmp_path, traced_run):
    path = tmp_path / "trace.xpl"
    write_xplot(traced_run.trace, str(path), SERVER_HOST)
    assert path.read_text().startswith("double double")


def test_ascii_plot_shape(traced_run):
    art = ascii_time_sequence(traced_run.trace, SERVER_HOST,
                              width=60, height=12)
    lines = art.splitlines()
    assert len(lines) == 14              # header + 12 rows + axis
    assert lines[-1].startswith("+---")
    assert any("*" in line for line in lines)


def test_ascii_plot_monotone_frontier(traced_run):
    """On a lossless run the sequence frontier never regresses: the
    top-most mark in each column moves upward left to right."""
    art = ascii_time_sequence(traced_run.trace, SERVER_HOST,
                              width=60, height=16)
    rows = [line[1:] for line in art.splitlines()[1:-1]]
    height = len(rows)
    tops = []
    for x in range(60):
        column = [y for y in range(height) if rows[y][x] == "*"]
        if column:
            tops.append((x, height - min(column)))
    assert tops == sorted(tops)
    frontier = [top for _, top in tops]
    assert frontier == sorted(frontier)


def test_ascii_plot_empty_trace():
    net = TwoHostNetwork(LAN)
    assert ascii_time_sequence(net.trace, SERVER_HOST) == \
        "(no data segments)"
