"""Tests for table formatting and the reproduction drivers."""

import pytest

from repro.analysis import (ComparisonRow, format_comparison_table,
                            format_simple_table, ratio,
                            reproduce_content_experiments,
                            reproduce_modem_experiment,
                            reproduce_protocol_table)


def test_ratio():
    assert ratio(2.0, 1.0) == 2.0
    assert ratio(0.0, 0.0) == 1.0
    assert ratio(1.0, 0.0) == float("inf")


def test_format_simple_table_alignment():
    text = format_simple_table("T", ["col", "x"],
                               [["aaa", "1"], ["b", "22"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    assert "col" in lines[2]
    assert lines[4].startswith("aaa")
    # Columns line up.
    assert lines[4].index("1") == lines[5].index("22")


def test_reproduce_protocol_table_smoke():
    rows, text = reproduce_protocol_table("Apache", "LAN", runs=1)
    assert len(rows) == 8
    assert "Table 5" in text
    assert "HTTP/1.1 Pipelined" in text
    for row in rows:
        assert row.paper is not None
        assert row.measured.packets > 0


def test_comparison_row_cells_include_ratios():
    rows, _ = reproduce_protocol_table("Apache", "LAN", runs=1)
    cells = rows[0].cells()
    assert len(cells) == 12     # measured + paper + two ratio columns


def test_reproduce_modem_experiment_smoke():
    results, text = reproduce_modem_experiment(runs=1)
    assert len(results) == 4
    assert "Modem compression" in text
    assert "saved" in text


def test_reproduce_content_experiments_smoke():
    results, text = reproduce_content_experiments()
    assert results["static_png_total"] < results["static_gif_total"]
    assert results["css_requests_saved"] >= 20
    assert "Content experiments" in text
