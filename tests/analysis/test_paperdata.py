"""Sanity tests over the transcribed paper data."""

from repro.analysis import (BROWSER_TABLES, CONTENT_NUMBERS, MODEM_TABLE,
                            PROTOCOL_TABLES, TABLE3)
from repro.core import FIRST_TIME, REVALIDATE


def test_all_six_protocol_tables_present():
    assert set(PROTOCOL_TABLES) == {
        ("Jigsaw", "LAN"), ("Apache", "LAN"),
        ("Jigsaw", "WAN"), ("Apache", "WAN"),
        ("Jigsaw", "PPP"), ("Apache", "PPP")}


def test_lan_wan_tables_have_four_modes_ppp_three():
    for (server, env), cells in PROTOCOL_TABLES.items():
        modes = {mode for mode, _ in cells}
        if env == "PPP":
            assert len(modes) == 3
            assert "HTTP/1.0" not in modes
        else:
            assert len(modes) == 4
        scenarios = {s for _, s in cells}
        assert scenarios == {FIRST_TIME, REVALIDATE}


def test_paper_pipelining_packet_claim_holds_in_transcription():
    """The transcription itself satisfies the abstract's >=2x claim."""
    for (server, env), cells in PROTOCOL_TABLES.items():
        if ("HTTP/1.0", FIRST_TIME) not in cells:
            continue
        http10 = cells[("HTTP/1.0", REVALIDATE)]
        pipelined = cells[("HTTP/1.1 Pipelined", REVALIDATE)]
        assert http10.packets / pipelined.packets > 10


def test_overhead_consistency():
    """%ov in the tables is consistent with Pa and Bytes (40 B headers)."""
    for cells in PROTOCOL_TABLES.values():
        for cell in cells.values():
            derived = 100 * 40 * cell.packets / (
                cell.payload_bytes + 40 * cell.packets)
            assert abs(derived - cell.percent_overhead) < 1.0


def test_table3_transcription():
    assert TABLE3["HTTP/1.0"].total_packets == 497
    assert TABLE3["HTTP/1.1"].seconds == 4.13
    for row in TABLE3.values():
        assert (row.packets_client_to_server
                + row.packets_server_to_client) == row.total_packets


def test_browser_tables():
    assert set(BROWSER_TABLES) == {"Jigsaw", "Apache"}
    for cells in BROWSER_TABLES.values():
        assert len(cells) == 4


def test_modem_table_savings():
    for server in ("Jigsaw", "Apache"):
        pa_unc, sec_unc = MODEM_TABLE[(server, "uncompressed")]
        pa_cmp, sec_cmp = MODEM_TABLE[(server, "compressed")]
        assert 1 - pa_cmp / pa_unc > 0.6
        assert 1 - sec_cmp / sec_unc > 0.6


def test_content_numbers():
    paper = CONTENT_NUMBERS
    assert paper["static_gif_bytes"] - paper["static_png_bytes"] == \
        paper["png_saved"]
    assert paper["animation_gif_bytes"] - paper["animation_mng_bytes"] \
        == paper["mng_saved"]
    assert paper["figure1_gif_bytes"] / paper["figure1_css_bytes"] > 4
