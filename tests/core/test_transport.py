"""The Transport strategy surface behind every protocol mode."""

import pytest

from repro.core.modes import (HTTP10_MODE, HTTP11_PERSISTENT,
                              HTTP11_PIPELINED, HTTP11_SHARDED, HTTP_MUX,
                              HTTP_MUX_PUSH, MODERN_MODES, ModeTuning)
from repro.core.transport import (DEFAULT_PORT, Http10Transport,
                                  Http11Transport, MuxTransport,
                                  ShardedTransport)
from repro.http import HTTP10
from repro.lint import ModeTraceRules


# ----------------------------------------------------------------------
# Strategy dispatch
# ----------------------------------------------------------------------
def test_every_mode_carries_a_transport():
    assert isinstance(HTTP10_MODE.transport, Http10Transport)
    assert isinstance(HTTP11_PERSISTENT.transport, Http11Transport)
    assert isinstance(HTTP_MUX.transport, MuxTransport)
    assert isinstance(HTTP11_SHARDED.transport, ShardedTransport)


def test_transports_compare_by_value():
    assert MuxTransport() == MuxTransport()
    assert MuxTransport() != MuxTransport(server_push=True)
    assert ShardedTransport(shards=4) == ShardedTransport(shards=4)


def test_mux_and_push_flags():
    assert not HTTP11_PIPELINED.transport.mux
    assert HTTP_MUX.transport.mux and not HTTP_MUX.transport.push
    assert HTTP_MUX_PUSH.transport.mux and HTTP_MUX_PUSH.transport.push
    assert not HTTP11_SHARDED.transport.mux


def test_http10_branch_lives_in_its_transport():
    # The old `if version == HTTP10` branch of client_config() moved
    # into Http10Transport: fat 4.1D requests, no pipelining.
    config = HTTP10_MODE.client_config()
    assert config.http_version == HTTP10
    assert config.user_agent.startswith("W3CRobot/4.1D")
    assert len(config.extra_headers) >= 4


# ----------------------------------------------------------------------
# ModeTuning and the deprecation shim
# ----------------------------------------------------------------------
def test_tuning_dataclass_forwarded():
    config = HTTP11_PIPELINED.client_config(
        tuning=ModeTuning(flush_timeout=1.0, explicit_flush=False,
                          output_buffer_size=512))
    assert config.flush_timeout == 1.0
    assert not config.explicit_flush
    assert config.output_buffer_size == 512


def test_legacy_keywords_warn_but_work():
    with pytest.warns(DeprecationWarning, match="ModeTuning"):
        config = HTTP11_PIPELINED.client_config(flush_timeout=0.2)
    assert config.flush_timeout == 0.2
    # Unspecified knobs keep their ModeTuning defaults.
    assert config.output_buffer_size == 1024


def test_tuning_and_legacy_keywords_are_mutually_exclusive():
    with pytest.raises(TypeError, match="not both"):
        HTTP11_PIPELINED.client_config(tuning=ModeTuning(),
                                       explicit_flush=False)


# ----------------------------------------------------------------------
# Per-mode trace rules
# ----------------------------------------------------------------------
def test_legacy_modes_have_no_extra_trace_rules():
    for mode in (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED):
        assert mode.transport.trace_rules(mode.client_config()) is None


def test_mux_trace_rules_pin_one_connection():
    rules = HTTP_MUX.transport.trace_rules(HTTP_MUX.client_config())
    assert rules == ModeTraceRules(min_connections=1, max_connections=1)


def test_sharded_trace_rules_name_every_origin_port():
    transport = HTTP11_SHARDED.transport
    rules = transport.trace_rules(HTTP11_SHARDED.client_config())
    assert rules.required_ports == tuple(
        DEFAULT_PORT + shard for shard in range(transport.shards))
    assert rules.max_handshakes_per_port == transport.connections_per_shard


# ----------------------------------------------------------------------
# Mode-level wiring
# ----------------------------------------------------------------------
def test_sharded_client_config_spreads_connections():
    config = HTTP11_SHARDED.client_config()
    assert config.shards == 4
    assert config.connections_per_shard == 2
    assert config.max_connections == 8


def test_modern_modes_roster():
    assert [mode.name for mode in MODERN_MODES] == [
        "HTTP/MUX", "HTTP/MUX Push", "HTTP/1.1 Sharded x4"]
