"""Integration tests for the experiment runner and headline claims.

These encode the paper's qualitative conclusions — the "shape" the
reproduction must preserve — as assertions.
"""

import pytest

from repro.core import (ALL_MODES, FIRST_TIME, HTTP10_MODE,
                        HTTP11_PERSISTENT, HTTP11_PIPELINED,
                        HTTP11_PIPELINED_COMPRESSED, REVALIDATE,
                        ExperimentError, run_experiment, run_repeated)
from repro.server import APACHE, JIGSAW
from repro.simnet import LAN, PPP, WAN


@pytest.fixture(scope="module")
def lan_cells():
    """All (mode, scenario) cells for Apache/LAN, single seed."""
    cells = {}
    for mode in ALL_MODES:
        for scenario in (FIRST_TIME, REVALIDATE):
            cells[(mode.name, scenario)] = run_experiment(
                mode, scenario, environment=LAN, profile=APACHE, seed=0)
    return cells


def test_all_runs_complete_and_verify(lan_cells):
    for result in lan_cells.values():
        assert result.fetch.complete
        assert not result.fetch.errors


def test_first_time_statuses_all_200(lan_cells):
    result = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    assert result.statuses == {200: 43}


def test_revalidation_statuses_for_http11(lan_cells):
    result = lan_cells[("HTTP/1.1 Pipelined", REVALIDATE)]
    assert result.statuses == {304: 43}


def test_http10_uses_43_connections_4_parallel(lan_cells):
    result = lan_cells[("HTTP/1.0", FIRST_TIME)]
    assert result.connections_used == 43
    assert result.max_parallel_connections == 4
    http11 = lan_cells[("HTTP/1.1", FIRST_TIME)]
    assert http11.connections_used == 1


# ----------------------------------------------------------------------
# Headline claims
# ----------------------------------------------------------------------
def test_pipelining_saves_at_least_2x_packets_first_time(lan_cells):
    """'The savings were at least a factor of two ... in terms of
    packets transmitted.'"""
    http10 = lan_cells[("HTTP/1.0", FIRST_TIME)]
    pipelined = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    assert http10.packets / pipelined.packets >= 2.0


def test_pipelining_saves_order_of_magnitude_on_revalidation(lan_cells):
    """'...and sometimes as much as a factor of ten' — revalidation
    'uses less than 1/10 of the total number of packets that HTTP/1.0
    does'."""
    http10 = lan_cells[("HTTP/1.0", REVALIDATE)]
    pipelined = lan_cells[("HTTP/1.1 Pipelined", REVALIDATE)]
    assert http10.packets / pipelined.packets >= 10.0


def test_persistent_without_pipelining_not_faster_than_http10():
    """'An HTTP/1.1 implementation that does not implement pipelining
    will perform worse (have higher elapsed time) than an HTTP/1.0
    implementation using multiple connections.'  (Strongest on WAN.)"""
    http10 = run_experiment(HTTP10_MODE, FIRST_TIME, environment=WAN,
                            profile=APACHE, seed=0)
    persistent = run_experiment(HTTP11_PERSISTENT, FIRST_TIME, environment=WAN,
                                profile=APACHE, seed=0)
    assert persistent.elapsed > http10.elapsed
    # ...while using far fewer packets.
    assert persistent.packets < http10.packets / 1.5


def test_pipelined_beats_http10_elapsed_everywhere():
    for environment in (LAN, WAN):
        http10 = run_experiment(HTTP10_MODE, FIRST_TIME,
                                environment=environment,
                                profile=APACHE, seed=0)
        pipelined = run_experiment(HTTP11_PIPELINED, FIRST_TIME,
                                   environment=environment, profile=APACHE,
                                   seed=0)
        assert pipelined.elapsed < http10.elapsed


def test_first_time_bandwidth_savings_are_few_percent(lan_cells):
    """'For the first time retrieval test, bandwidth savings due to
    pipelining and persistent connections of HTTP/1.1 is only a few
    percent.'"""
    http10 = lan_cells[("HTTP/1.0", FIRST_TIME)]
    pipelined = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    saving = 1 - pipelined.payload_bytes / http10.payload_bytes
    assert 0.0 <= saving <= 0.15


def test_compression_cuts_payload_about_19_percent(lan_cells):
    """'we decrease the overall payload with about 31K or approximately
    19%' (first-time retrieval)."""
    plain = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    compressed = lan_cells[
        ("HTTP/1.1 Pipelined w. compression", FIRST_TIME)]
    saving = 1 - compressed.payload_bytes / plain.payload_bytes
    assert 0.12 <= saving <= 0.25


def test_compression_saves_packets_and_time_first_time(lan_cells):
    """'about 16% of the packets and 12% of the elapsed time'."""
    plain = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    compressed = lan_cells[
        ("HTTP/1.1 Pipelined w. compression", FIRST_TIME)]
    assert compressed.packets < plain.packets
    assert compressed.elapsed <= plain.elapsed * 1.02


def test_overhead_percentage_higher_for_http10(lan_cells):
    """Small packets mean high header overhead: HTTP/1.0 revalidation
    pays ~20% where pipelining pays ~7%."""
    http10 = lan_cells[("HTTP/1.0", REVALIDATE)]
    pipelined = lan_cells[("HTTP/1.1 Pipelined", REVALIDATE)]
    assert http10.percent_overhead > 15.0
    assert pipelined.percent_overhead < 10.0


def test_mean_packet_size_roughly_doubles(lan_cells):
    """'The mean size of a packet in our traffic roughly doubled.'"""
    http10 = lan_cells[("HTTP/1.0", FIRST_TIME)]
    pipelined = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    assert pipelined.mean_packet_size > 1.5 * http10.mean_packet_size


def test_packet_trains_lengthen(lan_cells):
    """'The mean number of packets in a TCP session increased between a
    factor of two and a factor of ten.'"""
    http10 = lan_cells[("HTTP/1.0", FIRST_TIME)]
    pipelined = lan_cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    ratio = (pipelined.mean_packets_per_connection
             / http10.mean_packets_per_connection)
    assert ratio > 2.0


def test_ppp_elapsed_is_bandwidth_dominated():
    """PPP first-time ≈ payload / effective modem rate."""
    result = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=PPP,
                            profile=APACHE,
                            seed=0)
    floor = result.payload_bytes * 8.3 / 28_800 * 0.8
    assert result.elapsed > floor


# ----------------------------------------------------------------------
# Runner machinery
# ----------------------------------------------------------------------
def test_run_repeated_averages(lan_cells):
    averaged = run_repeated(HTTP11_PIPELINED, REVALIDATE, environment=LAN,
                            profile=APACHE,
                            runs=3)
    assert len(averaged.runs) == 3
    packets = [r.packets for r in averaged.runs]
    assert min(packets) <= averaged.packets <= max(packets)


def test_same_seed_same_result():
    a = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=LAN,
                       profile=APACHE, seed=7)
    b = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=LAN,
                       profile=APACHE, seed=7)
    assert a.packets == b.packets
    assert a.elapsed == b.elapsed


def test_different_seeds_vary_elapsed():
    a = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=WAN,
                       profile=APACHE, seed=1)
    b = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=WAN,
                       profile=APACHE, seed=2)
    assert a.elapsed != b.elapsed
