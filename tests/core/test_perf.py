"""Perf-counter surfacing and the benchmark harness."""

import json
import pathlib

import pytest

from repro.core.runner import run_experiment, run_repeated
from repro.perf import (BENCH_SCHEMA_VERSION, check_bench_regression,
                        representative_cells, run_benchmark,
                        run_matrix_benchmark, validate_bench_payload)


def test_trace_summary_carries_perf_counters():
    result = run_experiment("HTTP/1.1", "first-time", environment="LAN",
                            profile="Apache", seed=0)
    perf = result.trace.perf
    assert perf is not None
    assert perf.events_processed > 0
    assert perf.heap_peak > 0
    assert perf.segments >= result.packets


def test_lazy_timers_absorb_rearms():
    # Every ACKed segment used to pay a cancel+reschedule on the RTO
    # timer; the deadline-based timers absorb those as attribute writes.
    result = run_experiment("HTTP/1.1 Pipelined", "first-time",
                            environment="WAN", profile="Apache", seed=0)
    assert result.trace.perf.cancels_avoided > 0


def test_averaged_result_aggregates_perf():
    averaged = run_repeated("HTTP/1.1", "first-time", environment="LAN",
                            profile="Apache", runs=2)
    per_run = [r.trace.perf for r in averaged.runs]
    total = averaged.perf
    assert total.events_processed == sum(p.events_processed
                                         for p in per_run)
    assert total.segments == sum(p.segments for p in per_run)
    assert total.heap_peak == max(p.heap_peak for p in per_run)


def test_representative_cells_cover_all_registered_modes():
    # The bench is a performance surface, not a paper table: every
    # registered mode is timed in every environment (the paper tables'
    # omission of HTTP/1.0 on PPP does not apply here).
    from repro.core.registry import modes_for_environment
    cells = representative_cells()
    keys = {cell.key for cell in cells}
    for environment in ("LAN", "WAN", "PPP"):
        for mode in modes_for_environment(environment, paper_only=False):
            assert f"{mode.name}|{environment}" in keys
    assert len(keys) == len(cells)        # no duplicates


def test_validate_bench_payload_flags_problems():
    good = {
        "schema": BENCH_SCHEMA_VERSION,
        "baseline": {"cells": {"m|e": {"wall_time": 0.01}}},
        "current": {"cells": {"m|e": {
            "wall_time": 0.005, "runs": 3, "events_processed": 100,
            "heap_peak": 10, "segments": 50, "cancels_avoided": 5}}},
    }
    assert validate_bench_payload(good) == []
    assert validate_bench_payload({}) != []
    bad_schema = dict(good, schema=BENCH_SCHEMA_VERSION + 1)
    assert any("schema" in p for p in validate_bench_payload(bad_schema))
    missing_field = json.loads(json.dumps(good))
    del missing_field["current"]["cells"]["m|e"]["segments"]
    assert any("segments" in p
               for p in validate_bench_payload(missing_field))
    zero_wall = json.loads(json.dumps(good))
    zero_wall["current"]["cells"]["m|e"]["wall_time"] = 0
    assert any("wall_time" in p for p in validate_bench_payload(zero_wall))


def test_validate_matrix_section():
    good = {
        "schema": BENCH_SCHEMA_VERSION,
        "baseline": {"cells": {"m|e": {"wall_time": 0.01}}},
        "current": {"cells": {"m|e": {
            "wall_time": 0.005, "runs": 3, "events_processed": 100,
            "heap_peak": 10, "segments": 50, "cancels_avoided": 5}}},
        "matrix": {"cells": 24, "units": 24, "jobs": 4,
                   "cold_wall_time": 1.2, "warm_wall_time": 0.4,
                   "speedup_warm_vs_cold": 3.0, "artifact_hits": 0,
                   "artifact_misses": 151, "ipc_batches": 16,
                   "bytes_pickled": 9000},
    }
    assert validate_bench_payload(good) == []
    no_matrix = {k: v for k, v in good.items() if k != "matrix"}
    assert validate_bench_payload(no_matrix) == []    # section optional
    missing = json.loads(json.dumps(good))
    del missing["matrix"]["speedup_warm_vs_cold"]
    assert any("speedup_warm_vs_cold" in p
               for p in validate_bench_payload(missing))
    zero_warm = json.loads(json.dumps(good))
    zero_warm["matrix"]["warm_wall_time"] = 0
    assert any("warm_wall_time" in p
               for p in validate_bench_payload(zero_warm))
    not_object = dict(good, matrix=[1, 2])
    assert any("object" in p for p in validate_bench_payload(not_object))


def test_check_bench_regression():
    reference = {"a": {"wall_time": 0.100}, "b": {"wall_time": 0.100},
                 "retired": {"wall_time": 0.100}}
    current = {"a": {"wall_time": 0.110},        # +10%: fine
               "b": {"wall_time": 0.200},        # +100%: regressed
               "new-cell": {"wall_time": 9.9}}   # no reference: ignored
    problems = check_bench_regression(current, reference)
    assert len(problems) == 1 and "'b'" in problems[0]
    # A looser threshold lets the same measurement through.
    assert check_bench_regression(current, reference, threshold=1.5) == []
    # Malformed reference entries are skipped, not crashed on.
    assert check_bench_regression({"a": {"wall_time": 1.0}},
                                  {"a": {"wall_time": 0}}) == []
    assert check_bench_regression({"a": {}}, {"a": {"wall_time": 1}}) == []


@pytest.mark.slow
def test_run_matrix_benchmark_records_and_validates(tmp_path):
    out = tmp_path / "bench.json"
    out.write_text(json.dumps({
        "schema": BENCH_SCHEMA_VERSION,
        "baseline": {"cells": {"m|e": {"wall_time": 0.01}}},
        "current": {"cells": {"m|e": {
            "wall_time": 0.005, "runs": 3, "events_processed": 100,
            "heap_peak": 10, "segments": 50, "cancels_avoided": 5}}},
    }))
    payload = run_matrix_benchmark(str(out), jobs=2,
                                   log=lambda line: None)
    assert validate_bench_payload(payload) == []
    matrix = payload["matrix"]
    assert matrix["cells"] == 24
    assert matrix["warm_wall_time"] < matrix["cold_wall_time"]
    # The merge preserved the sections bench --matrix does not own.
    on_disk = json.loads(out.read_text())
    assert on_disk["baseline"]["cells"] == {"m|e": {"wall_time": 0.01}}
    assert on_disk["matrix"]["cells"] == 24


@pytest.mark.slow
def test_run_benchmark_writes_and_preserves_baseline(tmp_path):
    out = tmp_path / "bench.json"
    first = run_benchmark(str(out), quick=True, log=lambda line: None)
    assert validate_bench_payload(first) == []
    assert out.exists()
    # A second run must keep the first run's baseline verbatim and
    # report a speedup for every cell that has a baseline wall time.
    second = run_benchmark(str(out), quick=True, log=lambda line: None)
    assert second["baseline"]["cells"] == first["baseline"]["cells"]
    on_disk = json.loads(out.read_text())
    assert validate_bench_payload(on_disk) == []
    for entry in on_disk["current"]["cells"].values():
        assert "speedup_vs_baseline" in entry


def test_committed_bench_file_is_valid():
    bench = pathlib.Path(__file__).parents[2] / "BENCH_simnet.json"
    payload = json.loads(bench.read_text())
    problems = validate_bench_payload(payload)
    assert problems == []
    # The baseline section is an absolute wall-time anchor carried
    # forward from the session that first recorded it, so the ratio
    # against a `current` section regenerated on different hardware
    # only supports a direction check.  The >= 2x bars live on the
    # same-run ratios below, which cancel the machine out.
    cell = payload["current"]["cells"]["HTTP/1.1 Pipelined|WAN"]
    assert cell["speedup_vs_baseline"] > 1.0
    # PR-5 acceptance bar: a warm 24-cell matrix sweep (persistent
    # pool + artifact store) at least 2x faster than cold, measured
    # within one run.
    assert payload["matrix"]["speedup_warm_vs_cold"] >= 2.0
    # PR-7 acceptance bar: the flow-level fast-forward driver at least
    # 2x on every recorded bulk cell, fast vs --no-fastpath in the
    # same run (byte-identity checked by the harness before timing).
    fastpath = payload["fastpath"]["cells"]
    assert fastpath
    for entry in fastpath.values():
        assert entry["speedup_fastpath"] >= 2.0
        assert entry["fastforward_spans"] > 0
