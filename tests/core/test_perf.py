"""Perf-counter surfacing and the benchmark harness."""

import json
import pathlib

import pytest

from repro.core.runner import run_experiment, run_repeated
from repro.perf import (BENCH_SCHEMA_VERSION, representative_cells,
                        run_benchmark, validate_bench_payload)


def test_trace_summary_carries_perf_counters():
    result = run_experiment("HTTP/1.1", "first-time", environment="LAN",
                            profile="Apache", seed=0)
    perf = result.trace.perf
    assert perf is not None
    assert perf.events_processed > 0
    assert perf.heap_peak > 0
    assert perf.segments >= result.packets


def test_lazy_timers_absorb_rearms():
    # Every ACKed segment used to pay a cancel+reschedule on the RTO
    # timer; the deadline-based timers absorb those as attribute writes.
    result = run_experiment("HTTP/1.1 Pipelined", "first-time",
                            environment="WAN", profile="Apache", seed=0)
    assert result.trace.perf.cancels_avoided > 0


def test_averaged_result_aggregates_perf():
    averaged = run_repeated("HTTP/1.1", "first-time", environment="LAN",
                            profile="Apache", runs=2)
    per_run = [r.trace.perf for r in averaged.runs]
    total = averaged.perf
    assert total.events_processed == sum(p.events_processed
                                         for p in per_run)
    assert total.segments == sum(p.segments for p in per_run)
    assert total.heap_peak == max(p.heap_peak for p in per_run)


def test_representative_cells_follow_table_modes():
    cells = representative_cells()
    keys = {cell.key for cell in cells}
    assert "HTTP/1.0|LAN" in keys
    assert "HTTP/1.0|PPP" not in keys     # Tables 8-9 omit 1.0 on PPP
    assert len(keys) == len(cells)        # no duplicates


def test_validate_bench_payload_flags_problems():
    good = {
        "schema": BENCH_SCHEMA_VERSION,
        "baseline": {"cells": {"m|e": {"wall_time": 0.01}}},
        "current": {"cells": {"m|e": {
            "wall_time": 0.005, "runs": 3, "events_processed": 100,
            "heap_peak": 10, "segments": 50, "cancels_avoided": 5}}},
    }
    assert validate_bench_payload(good) == []
    assert validate_bench_payload({}) != []
    bad_schema = dict(good, schema=BENCH_SCHEMA_VERSION + 1)
    assert any("schema" in p for p in validate_bench_payload(bad_schema))
    missing_field = json.loads(json.dumps(good))
    del missing_field["current"]["cells"]["m|e"]["segments"]
    assert any("segments" in p
               for p in validate_bench_payload(missing_field))
    zero_wall = json.loads(json.dumps(good))
    zero_wall["current"]["cells"]["m|e"]["wall_time"] = 0
    assert any("wall_time" in p for p in validate_bench_payload(zero_wall))


@pytest.mark.slow
def test_run_benchmark_writes_and_preserves_baseline(tmp_path):
    out = tmp_path / "bench.json"
    first = run_benchmark(str(out), quick=True, log=lambda line: None)
    assert validate_bench_payload(first) == []
    assert out.exists()
    # A second run must keep the first run's baseline verbatim and
    # report a speedup for every cell that has a baseline wall time.
    second = run_benchmark(str(out), quick=True, log=lambda line: None)
    assert second["baseline"]["cells"] == first["baseline"]["cells"]
    on_disk = json.loads(out.read_text())
    assert validate_bench_payload(on_disk) == []
    for entry in on_disk["current"]["cells"].values():
        assert "speedup_vs_baseline" in entry


def test_committed_bench_file_is_valid():
    bench = pathlib.Path(__file__).parents[2] / "BENCH_simnet.json"
    payload = json.loads(bench.read_text())
    problems = validate_bench_payload(payload)
    assert problems == []
    # The PR-2 acceptance bar, recorded in the committed artifact.
    cell = payload["current"]["cells"]["HTTP/1.1 Pipelined|WAN"]
    assert cell["speedup_vs_baseline"] >= 2.0
