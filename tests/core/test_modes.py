"""Unit tests for protocol modes and the initial-tuning configuration."""

from repro.client.robot import ClientConfig
from repro.core import (ALL_MODES, HTTP10_MODE, HTTP11_PERSISTENT,
                        HTTP11_PIPELINED, HTTP11_PIPELINED_COMPRESSED,
                        TABLE_MODES, initial_tuning_client_config)
from repro.http import HTTP10, HTTP11


def test_four_canonical_modes():
    names = [m.name for m in ALL_MODES]
    assert names == ["HTTP/1.0", "HTTP/1.1", "HTTP/1.1 Pipelined",
                     "HTTP/1.1 Pipelined w. compression"]


def test_http10_mode_config():
    config = HTTP10_MODE.client_config()
    assert config.http_version == HTTP10
    assert config.max_connections == 4
    assert not config.pipeline
    assert config.reval_strategy == "get-plus-head"
    # The old libwww 4.1D requests are fatter than the 5.1 robot's.
    assert len(config.extra_headers) >= 4


def test_persistent_mode_config():
    config = HTTP11_PERSISTENT.client_config()
    assert config.http_version == HTTP11
    assert config.max_connections == 1
    assert not config.pipeline
    assert config.validator_preference == "etag"


def test_pipelined_mode_config():
    config = HTTP11_PIPELINED.client_config()
    assert config.pipeline
    assert config.output_buffer_size == 1024
    assert config.flush_timeout == 0.05
    assert config.explicit_flush


def test_compressed_mode_config():
    config = HTTP11_PIPELINED_COMPRESSED.client_config()
    assert config.accept_deflate
    assert config.pipeline


def test_flush_parameters_forwarded():
    config = HTTP11_PIPELINED.client_config(flush_timeout=1.0,
                                            explicit_flush=False,
                                            output_buffer_size=512)
    assert config.flush_timeout == 1.0
    assert not config.explicit_flush
    assert config.output_buffer_size == 512


def test_ppp_table_omits_http10():
    assert HTTP10_MODE not in TABLE_MODES["PPP"]
    assert HTTP10_MODE in TABLE_MODES["LAN"]


def test_initial_tuning_config():
    config = initial_tuning_client_config(HTTP11_PIPELINED)
    assert isinstance(config, ClientConfig)
    assert config.flush_timeout == 1.0          # pre-tuning 1 s timer
    assert not config.explicit_flush            # not invented yet
    assert config.reval_strategy == "get-plus-head"
    assert config.per_response_cpu > 0.02       # disk-cache bottleneck


def test_initial_tuning_http10_unchanged():
    config = initial_tuning_client_config(HTTP10_MODE)
    assert config.http_version == HTTP10
    assert config.per_response_cpu < 0.02       # no persistent cache
