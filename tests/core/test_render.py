"""Tests for the rendering-timeline model and ranged prefix fetching."""

import pytest

from repro.client.robot import ClientConfig, TAIL_MARKER
from repro.core.render import GIF_DIMENSION_BYTES, measure_render
from repro.http import HTTP10, HTTP11
from repro.server import APACHE
from repro.simnet import LAN, PPP


def cfg(**kwargs):
    return ClientConfig(http_version=HTTP11, pipeline=True, **kwargs)


@pytest.fixture(scope="module")
def ppp_pipelined():
    return measure_render(cfg(), PPP, APACHE)


@pytest.fixture(scope="module")
def ppp_ranged():
    return measure_render(cfg(range_prefix_bytes=256), PPP, APACHE)


def test_milestones_are_ordered(ppp_pipelined):
    m = ppp_pipelined
    assert m.first_html_byte is not None
    assert m.first_html_byte <= m.html_complete
    assert m.first_image_complete <= m.full_render
    assert m.layout_complete <= m.full_render
    assert m.verified


def test_ranged_fetch_verifies_reassembly(ppp_ranged):
    """Prefix + tail reassemble to the exact original bytes."""
    assert ppp_ranged.verified


def test_ranges_accelerate_layout(ppp_pipelined, ppp_ranged):
    """The paper's claim: with range requests, "HTTP/1.1 can perform
    well over a single connection" for interactive feel — every image's
    dimensions arrive long before the bodies."""
    assert ppp_ranged.layout_complete < ppp_pipelined.layout_complete * 0.6


def test_ranges_cost_little_total_time(ppp_pipelined, ppp_ranged):
    assert ppp_ranged.full_render < ppp_pipelined.full_render * 1.15


def test_parallel_connections_also_help_layout(ppp_pipelined):
    """HTTP/1.0's four connections get early dimensions too — the
    behaviour the paper says range requests replace."""
    http10 = measure_render(
        ClientConfig(http_version=HTTP10, max_connections=4), PPP,
        APACHE)
    assert http10.verified
    assert http10.layout_complete < ppp_pipelined.layout_complete


def test_lan_timeline_fast():
    metrics = measure_render(cfg(), LAN, APACHE)
    assert metrics.full_render < 1.0
    assert metrics.verified


def test_tail_requests_created_only_for_large_images():
    """Images smaller than the prefix complete in one 206."""
    from repro.content import build_microscape_site
    from repro.core.render import _RenderObserver
    from repro.server.static import ResourceStore
    from repro.http import MemoryCache
    from repro.server.base import SimHttpServer
    from repro.simnet.network import SERVER_HOST, TwoHostNetwork
    from repro.client.robot import Robot, FIRST_TIME

    site = build_microscape_site()
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, ResourceStore.from_site(site),
                  APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  cfg(range_prefix_bytes=256), MemoryCache())
    result = robot.fetch(site.html_url, FIRST_TIME)
    net.run()
    assert result.complete
    tails = [u for u in result.responses if u.endswith(TAIL_MARKER)]
    small = [o for o in site.image_objects if o.size <= 256]
    large = [o for o in site.image_objects if o.size > 256]
    assert len(tails) == len(large)
    for obj in small:
        assert obj.url + TAIL_MARKER not in result.responses


def test_dimension_threshold_matches_gif_header():
    """A GIF's dimensions live in its first 10 bytes."""
    import struct
    from repro.content import bullet, encode_gif
    wire = encode_gif(bullet(8))
    assert GIF_DIMENSION_BYTES == 10
    width, height = struct.unpack_from("<HH", wire, 6)
    assert (width, height) == (8, 8)
