"""Tests for the Navigator / Internet Explorer profiles (Tables 10-11)."""

import pytest

from repro.core import FIRST_TIME, HTTP10_MODE, REVALIDATE, run_experiment
from repro.core.browsers import BROWSERS, IE_40B1, NETSCAPE_40B5
from repro.http import HTTP10
from repro.server import APACHE, JIGSAW
from repro.simnet import LAN


def run_browser(browser, scenario, profile):
    return run_experiment(HTTP10_MODE, scenario, environment=LAN,
                          profile=profile, seed=0,
                          client_config=browser.client_config())


def test_browser_configs():
    for browser in BROWSERS:
        config = browser.client_config()
        assert config.http_version == HTTP10
        assert config.keep_alive
        assert config.max_connections == 4
        assert not config.pipeline
    assert NETSCAPE_40B5.allow_date_fallback
    assert not IE_40B1.allow_date_fallback


def test_browser_requests_more_verbose_than_robot():
    from repro.core import HTTP11_PIPELINED
    robot = run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=LAN,
                           profile=APACHE,
                           seed=0)
    netscape = run_browser(NETSCAPE_40B5, FIRST_TIME, APACHE)
    assert (netscape.fetch.mean_request_bytes
            > robot.fetch.mean_request_bytes + 80)


def test_netscape_validates_against_both_servers():
    """Date fallback lets Navigator get 304s even from Jigsaw."""
    for profile in (APACHE, JIGSAW):
        result = run_browser(NETSCAPE_40B5, REVALIDATE, profile)
        assert result.statuses.get(304, 0) == 43


def test_ie_validates_against_apache():
    result = run_browser(IE_40B1, REVALIDATE, APACHE)
    assert result.statuses.get(304, 0) == 43


def test_ie_degrades_against_jigsaw():
    """No Last-Modified from Jigsaw => IE re-GETs the HTML and HEADs
    the images; Jigsaw drops keep-alive after HEAD, so IE pays a fresh
    connection per image (the Table 10 blow-up)."""
    apache = run_browser(IE_40B1, REVALIDATE, APACHE)
    jigsaw = run_browser(IE_40B1, REVALIDATE, JIGSAW)
    assert jigsaw.payload_bytes > 2.0 * apache.payload_bytes
    assert jigsaw.packets > 2.0 * apache.packets
    assert jigsaw.connections_used >= 40
    # The HTML body crossed the wire again.
    assert jigsaw.statuses.get(200, 0) >= 42


def test_netscape_beats_ie_on_jigsaw_reval():
    netscape = run_browser(NETSCAPE_40B5, REVALIDATE, JIGSAW)
    ie = run_browser(IE_40B1, REVALIDATE, JIGSAW)
    assert netscape.packets < ie.packets / 2
    assert netscape.payload_bytes < ie.payload_bytes / 2


def test_robot_pipeline_beats_browsers():
    """The tuned HTTP/1.1 robot outperforms both product browsers."""
    from repro.core import HTTP11_PIPELINED
    robot = run_experiment(HTTP11_PIPELINED, REVALIDATE, environment=LAN,
                           profile=APACHE,
                           seed=0)
    for browser in BROWSERS:
        result = run_browser(browser, REVALIDATE, APACHE)
        assert robot.packets < result.packets
