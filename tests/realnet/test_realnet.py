"""Integration tests: real sockets on localhost."""

import dataclasses

import pytest

from repro.content import build_microscape_site
from repro.realnet import RealHttpClient, RealHttpServer
from repro.server import APACHE, APACHE_12B2, ResourceStore


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


@pytest.fixture(scope="module")
def store(site):
    return ResourceStore.from_site(site)


@pytest.fixture()
def server(store):
    with RealHttpServer(store, APACHE) as running:
        yield running


def test_single_get(server, store):
    with RealHttpClient(*server.address) as client:
        response = client.get("/home.html")
    assert response.status == 200
    assert response.body == store.get("/home.html").body
    assert response.headers.get("ETag") == store.get("/home.html").etag


def test_404(server):
    with RealHttpClient(*server.address) as client:
        assert client.get("/missing").status == 404


def test_persistent_connection_reused(server):
    with RealHttpClient(*server.address) as client:
        client.get("/gifs/bullet0.gif")
        client.get("/gifs/bullet1.gif")
        assert client.connections_opened == 1
    assert server.connections_accepted == 1


def test_pipelined_batch(server, store, site):
    urls = site.all_urls()
    with RealHttpClient(*server.address) as client:
        responses = client.pipeline(urls)
    assert len(responses) == 43
    for url, response in zip(urls, responses):
        assert response.status == 200
        assert response.body == store.get(url).body


def test_conditional_get_roundtrip(server, store):
    with RealHttpClient(*server.address) as client:
        first = client.get("/gifs/hero.gif")
        assert first.status == 200
        second = client.get("/gifs/hero.gif", conditional=True)
    assert second.status == 304
    # Cache handed back the stored body.
    assert second.body == store.get("/gifs/hero.gif").body


def test_deflate_end_to_end(server, store):
    with RealHttpClient(*server.address) as client:
        response = client.get("/home.html", accept_deflate=True)
    # Client inflated transparently; body matches the original.
    assert response.body == store.get("/home.html").body


def test_range_request(server, store):
    with RealHttpClient(*server.address) as client:
        response = client.get("/gifs/hero.gif",
                              headers=[("Range", "bytes=0-99")])
    assert response.status == 206
    assert response.body == store.get("/gifs/hero.gif").body[:100]


def test_head_request(server):
    with RealHttpClient(*server.address) as client:
        response = client.request(
            client.build_request("/home.html", method="HEAD"))
    assert response.status == 200
    assert response.body == b""
    assert response.headers.get_int("Content-Length") > 0


def test_request_cap_recovery(store, site):
    """Against an Apache-1.2b2-style server the pipelining client must
    retry on fresh connections and still retrieve everything."""
    with RealHttpServer(store, APACHE_12B2) as server:
        urls = site.all_urls()
        with RealHttpClient(*server.address) as client:
            responses = client.pipeline(urls)
        assert len(responses) == 43
        assert all(r.status == 200 for r in responses)
        assert client.connections_opened >= 8
    # No request was dropped or duplicated.
    assert server.requests_served >= 43


def test_parallel_clients(server, store, site):
    import threading
    results = []

    def fetch():
        with RealHttpClient(*server.address) as client:
            results.append(client.pipeline(site.all_urls()[:10]))

    threads = [threading.Thread(target=fetch) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 4
    for batch in results:
        assert all(r.status == 200 for r in batch)
