"""Edge cases for the real-socket server and client."""

import socket

import pytest

from repro.content import build_microscape_site
from repro.http import HTTP10, Headers, Request
from repro.realnet import RealHttpClient, RealHttpServer
from repro.server import APACHE, JIGSAW, ResourceStore


@pytest.fixture(scope="module")
def store():
    return ResourceStore.from_site(build_microscape_site())


@pytest.fixture()
def server(store):
    with RealHttpServer(store, APACHE) as running:
        yield running


def raw_exchange(address, payload, read_timeout=2.0):
    sock = socket.create_connection(address, timeout=read_timeout)
    sock.sendall(payload)
    data = b""
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    except socket.timeout:
        pass
    sock.close()
    return data


def test_garbage_gets_400(server):
    data = raw_exchange(server.address, b"NONSENSE\r\n\r\n")
    assert data.startswith(b"HTTP/1.0 400")


def test_http10_connection_closes_after_response(server, store):
    request = Request("GET", "/gifs/bullet0.gif", HTTP10,
                      Headers([("Host", "h")]))
    data = raw_exchange(server.address, request.to_bytes())
    assert data.startswith(b"HTTP/1.0 200")
    assert data.endswith(store.get("/gifs/bullet0.gif").body)


def test_http10_keepalive_round_trip(server):
    sock = socket.create_connection(server.address, timeout=2.0)
    ka = Request("GET", "/gifs/bullet0.gif", HTTP10, Headers([
        ("Host", "h"), ("Connection", "Keep-Alive")]))
    sock.sendall(ka.to_bytes())
    first = sock.recv(65536)
    assert b"Keep-Alive" in first
    sock.sendall(ka.to_bytes())
    second = sock.recv(65536)
    assert second.startswith(b"HTTP/1.0 200")
    sock.close()


def test_jigsaw_profile_served_over_sockets(store):
    with RealHttpServer(store, JIGSAW) as server:
        with RealHttpClient(*server.address) as client:
            response = client.get("/home.html")
    assert response.headers.get("Server") == "Jigsaw/1.06"
    assert "Last-Modified" not in response.headers
    assert response.headers.get("ETag")


def test_stop_is_idempotent_and_restartable(store):
    server = RealHttpServer(store, APACHE)
    server.start()
    address = server.address
    server.stop()
    server.stop()
    with pytest.raises(RuntimeError):
        _ = server.address
    # A new instance can bind again immediately (SO_REUSEADDR).
    with RealHttpServer(store, APACHE, port=address[1]) as again:
        with RealHttpClient(*again.address) as client:
            assert client.get("/gifs/bullet0.gif").status == 200


def test_double_start_rejected(store):
    server = RealHttpServer(store, APACHE).start()
    try:
        with pytest.raises(RuntimeError):
            server.start()
    finally:
        server.stop()


def test_multipart_over_sockets(server, store):
    from repro.http import parse_multipart_byteranges
    with RealHttpClient(*server.address) as client:
        response = client.get(
            "/gifs/hero.gif", headers=[("Range", "bytes=0-9, 50-59")])
    assert response.status == 206
    parts = parse_multipart_byteranges(
        response.body, response.headers.get("Content-Type"))
    body = store.get("/gifs/hero.gif").body
    assert parts[0][1] == body[:10]
    assert parts[1][1] == body[50:60]
