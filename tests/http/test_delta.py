"""Tests for delta-encoded responses (reference [26] / RFC 3229 style)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.content import build_microscape_site
from repro.http import HTTP11, Headers, Request
from repro.http.cache import CacheEntry
from repro.http.delta import (DELTA_IM_TOKEN, apply_delta,
                              apply_delta_response, encode_delta,
                              wants_delta)
from repro.http.messages import Response
from repro.server import APACHE, ResourceStore
from repro.server.static import build_response


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def test_delta_roundtrip():
    old = b"<html><body>version one of the page</body></html>"
    new = b"<html><body>version two of the page!</body></html>"
    delta = encode_delta(old, new)
    assert apply_delta(old, delta) == new
    assert len(delta) < len(new)


def test_small_edit_gives_tiny_delta():
    old = build_microscape_site().html.body
    new = old.replace(b"Section 1", b"Section A", 1)
    delta = encode_delta(old, new)
    assert apply_delta(old, delta) == new
    assert len(delta) < len(new) / 50      # a few dozen bytes vs 43 KB


@settings(max_examples=40)
@given(st.binary(max_size=500), st.binary(max_size=500))
def test_delta_roundtrip_property(old, new):
    assert apply_delta(old, encode_delta(old, new)) == new


def test_wants_delta():
    assert wants_delta(Headers([("A-IM", DELTA_IM_TOKEN)]))
    assert not wants_delta(Headers([("A-IM", "gzip")]))
    assert not wants_delta(Headers())


# ----------------------------------------------------------------------
# Server negotiation
# ----------------------------------------------------------------------
@pytest.fixture()
def store():
    return ResourceStore.from_site(build_microscape_site())


def delta_request(url, etag):
    return Request("GET", url, HTTP11, Headers([
        ("Host", "h"), ("If-None-Match", etag),
        ("A-IM", DELTA_IM_TOKEN)]))


def test_unchanged_resource_still_304(store):
    etag = store.get("/home.html").etag
    response = build_response(store, delta_request("/home.html", etag),
                              APACHE)
    assert response.status == 304


def test_changed_resource_served_as_delta(store):
    old = store.get("/home.html")
    new_body = old.body.replace(b"Section 1", b"Section A", 1)
    store.update("/home.html", new_body)
    response = build_response(store,
                              delta_request("/home.html", old.etag),
                              APACHE)
    assert response.status == 226
    assert response.headers.get("IM") == DELTA_IM_TOKEN
    assert response.headers.get("Delta-Base") == old.etag
    assert len(response.body) < len(new_body) / 50
    assert apply_delta(old.body, response.body) == new_body
    # The response carries the *new* validator for the cache update.
    assert response.headers.get("ETag") == store.get("/home.html").etag


def test_unknown_base_falls_back_to_full_200(store):
    store.update("/home.html",
                 store.get("/home.html").body + b"<p>more</p>")
    response = build_response(store,
                              delta_request("/home.html", '"stranger"'),
                              APACHE)
    assert response.status == 200
    assert response.body == store.get("/home.html").body


def test_client_without_aim_gets_full_200(store):
    old = store.get("/home.html")
    store.update("/home.html", old.body + b"<p>more</p>")
    response = build_response(
        store, Request("GET", "/home.html", HTTP11,
                       Headers([("Host", "h"),
                                ("If-None-Match", old.etag)])), APACHE)
    assert response.status == 200


def test_version_history_is_bounded(store):
    url = "/gifs/bullet0.gif"
    for index in range(8):
        store.update(url, b"version %d" % index)
    resource = store.get(url)
    assert len(resource.previous_versions) <= resource.MAX_RETAINED


def test_apply_delta_response_helpers(store):
    old = store.get("/home.html")
    entry = CacheEntry("/home.html", old.body,
                       Headers([("ETag", old.etag)]))
    new_body = old.body.replace(b"copyright", b"Copyright", 1)
    store.update("/home.html", new_body)
    response = build_response(store,
                              delta_request("/home.html", old.etag),
                              APACHE)
    assert apply_delta_response(entry, response) == new_body
    # Plain responses pass through.
    assert apply_delta_response(entry, Response(200, body=b"x")) == b"x"
    # Mismatched base is rejected.
    wrong = CacheEntry("/home.html", b"???",
                       Headers([("ETag", '"zzz"')]))
    with pytest.raises(ValueError):
        apply_delta_response(wrong, response)
    with pytest.raises(ValueError):
        apply_delta_response(None, response)


# ----------------------------------------------------------------------
# End to end over real sockets
# ----------------------------------------------------------------------
def test_delta_revalidation_over_sockets(store):
    from repro.realnet import RealHttpClient, RealHttpServer
    with RealHttpServer(store, APACHE) as server:
        with RealHttpClient(*server.address) as client:
            first = client.get("/home.html")
            assert first.status == 200
            old_body = first.body
            new_body = old_body.replace(b"microscape", b"MICROSCAPE", 3)
            store.update("/home.html", new_body)
            second = client.get("/home.html", accept_delta=True)
            assert second.status == 226
            assert second.body == new_body          # client reassembled
            assert client.cache.get("/home.html").body == new_body
            # And a further revalidation is a clean 304 on the new tag.
            third = client.get("/home.html", accept_delta=True)
            assert third.status == 304
