"""Unit and property tests for content codings."""

import pytest
from hypothesis import given, strategies as st

from repro.http import (Headers, accepted_codings, choose_coding,
                        compression_ratio, decode_body, deflate_decode,
                        deflate_encode, encode_body, gzip_decode,
                        gzip_encode)


def test_deflate_roundtrip():
    data = b"<html><body>" + b"The quick brown fox. " * 100 + b"</body></html>"
    assert deflate_decode(deflate_encode(data)) == data


def test_deflate_accepts_raw_stream():
    """Some 1990s peers sent raw DEFLATE without the zlib wrapper."""
    import zlib
    compressor = zlib.compressobj(wbits=-zlib.MAX_WBITS)
    raw = compressor.compress(b"legacy raw deflate") + compressor.flush()
    assert deflate_decode(raw) == b"legacy raw deflate"


def test_gzip_roundtrip():
    data = b"payload " * 50
    assert gzip_decode(gzip_encode(data)) == data


def test_encode_decode_by_name():
    for coding in ("identity", "deflate", "gzip"):
        assert decode_body(encode_body(b"abc", coding), coding) == b"abc"


def test_unknown_coding_raises():
    with pytest.raises(ValueError):
        encode_body(b"x", "brotli")
    with pytest.raises(ValueError):
        decode_body(b"x", "compress")


def test_html_compresses_about_three_times():
    """The paper: deflate shrank the 42K Microscape HTML to ~11K (~3x)."""
    html = (b"<html><head><title>test</title></head><body>"
            + b"<p class=banner>solutions</p><img src=\"/i/x.gif\">" * 400
            + b"</body></html>")
    ratio = compression_ratio(html)
    assert ratio < 0.40


def test_accepted_codings_parsing():
    headers = Headers([("Accept-Encoding", "deflate, gzip;q=0.5")])
    assert accepted_codings(headers) == ["deflate", "gzip"]


def test_choose_coding_negotiation():
    wants_deflate = Headers([("Accept-Encoding", "deflate")])
    assert choose_coding(wants_deflate) == "deflate"
    wants_nothing = Headers()
    assert choose_coding(wants_nothing) == "identity"
    wants_brotli = Headers([("Accept-Encoding", "br")])
    assert choose_coding(wants_brotli) == "identity"
    wants_gzip = Headers([("Accept-Encoding", "gzip")])
    assert choose_coding(wants_gzip, available=["deflate", "gzip"]) == "gzip"


def test_compression_ratio_of_empty_is_one():
    assert compression_ratio(b"") == 1.0


@given(st.binary(max_size=5000))
def test_deflate_roundtrip_property(data):
    assert deflate_decode(deflate_encode(data)) == data


@given(st.binary(max_size=2000))
def test_gzip_roundtrip_property(data):
    assert gzip_decode(gzip_encode(data)) == data
