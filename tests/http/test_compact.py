"""Tests for the compact (delta) HTTP wire representation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.http.compact import (DeltaStreamDecoder, DeltaStreamEncoder,
                                compact_ratio, decode_varint,
                                encode_varint)


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 20, 2 ** 40])
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, pos = decode_varint(encoded)
    assert decoded == value
    assert pos == len(encoded)


def test_varint_incomplete_returns_none():
    encoded = encode_varint(300)
    assert decode_varint(encoded[:1]) == (None, 0)


def test_varint_negative_rejected():
    with pytest.raises(ValueError):
        encode_varint(-1)


@given(st.integers(0, 2 ** 60))
def test_varint_roundtrip_property(value):
    decoded, _ = decode_varint(encode_varint(value))
    assert decoded == value


# ----------------------------------------------------------------------
# Delta stream
# ----------------------------------------------------------------------
def roundtrip(messages, step=5):
    encoder = DeltaStreamEncoder()
    wire = b"".join(encoder.encode(m) for m in messages)
    decoder = DeltaStreamDecoder()
    out = []
    for i in range(0, len(wire), step):
        out.extend(decoder.feed(wire[i:i + step]))
    return out, encoder


def test_single_message():
    out, _ = roundtrip([b"GET / HTTP/1.1\r\n\r\n"])
    assert out == [b"GET / HTTP/1.1\r\n\r\n"]


def test_similar_messages_roundtrip():
    messages = [
        f'GET /gifs/img{n}.gif HTTP/1.1\r\nHost: h\r\n'
        f'If-None-Match: "tag{n:04d}"\r\n\r\n'.encode()
        for n in range(40)]
    out, encoder = roundtrip(messages)
    assert out == messages
    assert encoder.ratio > 3.0


def test_paper_envelope_factor_on_revalidation_requests():
    """The actual robot revalidation requests compress 'a factor of
    five or ten' (paper's back-of-the-envelope)."""
    from repro.content import build_microscape_site
    from repro.http import Headers, Request
    from repro.server import APACHE, ResourceStore
    site = build_microscape_site()
    store = ResourceStore.from_site(site)
    messages = []
    for url in site.all_urls():
        request = Request("GET", url, (1, 1), Headers([
            ("Host", "www26.w3.org"),
            ("User-Agent", "W3CRobot/5.1 libwww/5.1"),
            ("Accept", "*/*"),
            ("If-None-Match", store.get(url).etag)]))
        messages.append(request.to_bytes())
    ratio = compact_ratio(messages)
    assert 4.0 <= ratio <= 15.0


def test_completely_different_messages():
    messages = [b"A" * 50, b"B" * 60, b"C" * 40]
    out, encoder = roundtrip(messages)
    assert out == messages
    assert encoder.ratio < 1.1      # no redundancy to exploit


def test_identical_messages_cost_almost_nothing():
    messages = [b"GET / HTTP/1.1\r\n\r\n"] * 20
    out, encoder = roundtrip(messages)
    assert out == messages
    # 19 of 20 frames are three varints each.
    assert encoder.encoded_bytes < len(messages[0]) + 20 * 4


def test_empty_message():
    out, _ = roundtrip([b"abc", b"", b"abc"])
    assert out == [b"abc", b"", b"abc"]


def test_corrupt_context_rejected():
    decoder = DeltaStreamDecoder()
    # Claims a 10-byte shared prefix against an empty context.
    frame = encode_varint(10) + encode_varint(0) + encode_varint(0)
    with pytest.raises(ValueError):
        decoder.feed(frame)


@settings(max_examples=40)
@given(st.lists(st.binary(max_size=300), min_size=1, max_size=12),
       st.integers(1, 17))
def test_delta_roundtrip_property(messages, step):
    out, _ = roundtrip(messages, step=step)
    assert out == messages


@settings(max_examples=15, deadline=None)
@given(st.binary(min_size=1, max_size=150),
       st.binary(min_size=1, max_size=150),
       st.integers(60, 120))
def test_large_message_roundtrip_uses_block_matcher(seed_a, seed_b,
                                                    repeats):
    """Messages past DIFFLIB_LIMIT go through the O(n) block matcher;
    the stream must still be lossless."""
    first = (seed_a + seed_b) * repeats       # > 4096 bytes
    second = (seed_b + b"|" + seed_a) * repeats
    out, _ = roundtrip([first, second, first], step=1024)
    assert out == [first, second, first]


@settings(max_examples=15, deadline=None)
@given(st.binary(min_size=40, max_size=200), st.data())
def test_large_similar_messages_compress(seed_bytes, data):
    """A localized edit in a large message costs a small frame."""
    base = bytes(range(256)) * 20 + seed_bytes * 30   # > 5 KB, varied
    cut = data.draw(st.integers(0, len(base) - 1))
    edited = base[:cut] + b"EDIT!" + base[cut:]
    encoder = DeltaStreamEncoder()
    encoder.encode(base)
    frame = encoder.encode(edited)
    decoder = DeltaStreamDecoder()
    decoder._previous = base
    assert decoder.feed(frame) == [edited]
    assert len(frame) < len(edited) / 10
