"""Unit tests for Request/Response serialization."""

from repro.http import HTTP10, HTTP11, Headers, Request, Response


def test_request_wire_format():
    req = Request("GET", "/index.html", HTTP11,
                  Headers([("Host", "www26.w3.org")]))
    assert req.to_bytes() == (b"GET /index.html HTTP/1.1\r\n"
                              b"Host: www26.w3.org\r\n\r\n")


def test_request_wire_length_matches_bytes():
    req = Request("GET", "/a", HTTP11, Headers([("Host", "h")]))
    assert req.wire_length == len(req.to_bytes())


def test_robot_request_is_compact():
    """The paper: the libwww robot averages ~190 bytes per request."""
    req = Request("GET", "/images/logo42.gif", HTTP11, Headers([
        ("Host", "www26.w3.org"),
        ("User-Agent", "W3CRobot/5.1 libwww/5.1"),
        ("Accept", "*/*"),
        ("If-None-Match", '"1a2b3c4d"'),
    ]))
    assert 120 <= req.wire_length <= 260


def test_http11_keep_alive_default():
    assert Request("GET", "/", HTTP11).wants_keep_alive()
    req = Request("GET", "/", HTTP11,
                  Headers([("Connection", "close")]))
    assert not req.wants_keep_alive()


def test_http10_close_default():
    assert not Request("GET", "/", HTTP10).wants_keep_alive()
    req = Request("GET", "/", HTTP10,
                  Headers([("Connection", "Keep-Alive")]))
    assert req.wants_keep_alive()


def test_conditional_detection():
    assert Request("GET", "/", HTTP11,
                   Headers([("If-None-Match", '"x"')])).is_conditional()
    assert Request("GET", "/", HTTP10,
                   Headers([("If-Modified-Since",
                             "Tue, 24 Jun 1997 00:00:00 GMT")])
                   ).is_conditional()
    assert not Request("GET", "/").is_conditional()


def test_response_wire_format():
    resp = Response(200, HTTP11, Headers([("Content-Length", "2")]),
                    body=b"ok")
    assert resp.to_bytes() == (b"HTTP/1.1 200 OK\r\n"
                               b"Content-Length: 2\r\n\r\nok")


def test_default_reason_phrases():
    assert Response(304).reason_phrase == "Not Modified"
    assert Response(206).reason_phrase == "Partial Content"
    assert Response(999).reason_phrase == "Unknown"
    assert Response(200, reason="Fine").reason_phrase == "Fine"


def test_head_response_suppresses_body():
    resp = Response(200, HTTP11, Headers([("Content-Length", "5")]),
                    body=b"12345", request_method="HEAD")
    assert resp.body_on_wire() == b""
    assert resp.to_bytes().endswith(b"\r\n\r\n")


def test_304_suppresses_body():
    resp = Response(304, HTTP11, body=b"should never appear")
    assert resp.body_on_wire() == b""


def test_keep_alive_negotiation():
    assert Response(200, HTTP11).allows_keep_alive()
    assert not Response(200, HTTP11,
                        Headers([("Connection", "close")])
                        ).allows_keep_alive()
    assert not Response(200, HTTP10).allows_keep_alive()
    assert Response(200, HTTP10,
                    Headers([("Connection", "Keep-Alive")])
                    ).allows_keep_alive()
