"""Unit tests for the MUX frame codec."""

import pytest

from repro.http.framing import (F_DATA, F_HEADERS, F_PUSH_PROMISE,
                                F_WINDOW_UPDATE, FRAME_HEADER_SIZE,
                                FRAME_TYPE_NAMES, Frame, FrameReader,
                                FramingError, INITIAL_STREAM_WINDOW,
                                MAX_DATA_PAYLOAD, encode_frame,
                                encode_window_update, window_increment)


def test_round_trip_single_frame():
    wire = encode_frame(F_HEADERS, 3, b"GET / HTTP/1.1\r\n\r\n")
    frames = FrameReader().feed(wire)
    assert len(frames) == 1
    frame = frames[0]
    assert frame.type == F_HEADERS
    assert frame.stream == 3
    assert frame.payload == b"GET / HTTP/1.1\r\n\r\n"
    assert frame.wire_size == len(wire)


def test_reader_reassembles_across_arbitrary_byte_runs():
    wire = (encode_frame(F_HEADERS, 1, b"head") +
            encode_frame(F_DATA, 1, b"x" * 100) +
            encode_frame(F_DATA, 2, b""))
    reader = FrameReader()
    frames = []
    for i in range(len(wire)):            # one byte at a time
        frames.extend(reader.feed(wire[i:i + 1]))
    assert [(f.type, f.stream, len(f.payload)) for f in frames] == [
        (F_HEADERS, 1, 4), (F_DATA, 1, 100), (F_DATA, 2, 0)]
    assert reader.buffered == 0


def test_reader_buffers_partial_frame():
    wire = encode_frame(F_DATA, 5, b"abcdef")
    reader = FrameReader()
    assert reader.feed(wire[:FRAME_HEADER_SIZE + 2]) == []
    assert reader.buffered == FRAME_HEADER_SIZE + 2
    frames = reader.feed(wire[FRAME_HEADER_SIZE + 2:])
    assert len(frames) == 1
    assert frames[0].payload == b"abcdef"


def test_unknown_frame_type_rejected():
    bogus = bytes([0x7f]) + encode_frame(F_DATA, 1, b"")[1:]
    with pytest.raises(FramingError, match="unknown frame type"):
        FrameReader().feed(bogus)


def test_window_update_round_trip():
    wire = encode_window_update(7, 4096)
    (frame,) = FrameReader().feed(wire)
    assert frame.type == F_WINDOW_UPDATE
    assert window_increment(frame) == 4096


def test_window_increment_rejects_bad_payload_length():
    with pytest.raises(FramingError, match="WINDOW_UPDATE payload"):
        window_increment(Frame(F_WINDOW_UPDATE, 1, b"\x00\x01"))


def test_constants_are_coherent():
    # The window must hold several max-size DATA frames, or the credit
    # loop would stall every stream after its first frame.
    assert INITIAL_STREAM_WINDOW >= 2 * MAX_DATA_PAYLOAD
    assert F_PUSH_PROMISE in FRAME_TYPE_NAMES
    assert len(set(FRAME_TYPE_NAMES.values())) == len(FRAME_TYPE_NAMES)
