"""Unit tests for client caching and server-side validation logic."""

import pytest

from repro.http import (Headers, MemoryCache, Response, TwoFileDiskCache,
                        format_http_date, is_not_modified, PAPER_EPOCH)


def make_response(body=b"data", etag='"v1"', date=None):
    headers = Headers([("Content-Type", "image/gif"),
                       ("Content-Length", str(len(body)))])
    if etag:
        headers.add("ETag", etag)
    if date:
        headers.add("Last-Modified", date)
    return Response(200, headers=headers, body=body)


def test_store_and_get():
    cache = MemoryCache()
    cache.store("/a.gif", make_response())
    entry = cache.get("/a.gif")
    assert entry is not None
    assert entry.body == b"data"
    assert entry.etag == '"v1"'


def test_non_200_not_stored():
    cache = MemoryCache()
    assert cache.store("/x", Response(404)) is None
    assert "/x" not in cache


def test_conditional_headers_prefer_etag_for_http11():
    cache = MemoryCache()
    date = format_http_date(PAPER_EPOCH)
    cache.store("/a", make_response(etag='"v1"', date=date))
    headers = cache.conditional_headers("/a", http11=True)
    assert headers == [("If-None-Match", '"v1"')]


def test_conditional_headers_fall_back_to_date():
    cache = MemoryCache()
    date = format_http_date(PAPER_EPOCH)
    cache.store("/a", make_response(etag=None, date=date))
    assert cache.conditional_headers("/a", http11=True) == [
        ("If-Modified-Since", date)]
    # HTTP/1.0 can only use the date even when an ETag exists.
    cache.store("/b", make_response(etag='"v1"', date=date))
    assert cache.conditional_headers("/b", http11=False) == [
        ("If-Modified-Since", date)]


def test_conditional_headers_empty_when_uncached():
    assert MemoryCache().conditional_headers("/nope") == []


def test_304_returns_cached_body():
    cache = MemoryCache()
    cache.store("/a", make_response(body=b"cached bytes"))
    body = cache.handle_response("/a", Response(304))
    assert body == b"cached bytes"
    assert cache.validations == 1


def test_304_for_uncached_url_raises():
    with pytest.raises(KeyError):
        MemoryCache().handle_response("/nope", Response(304))


def test_200_replaces_entry():
    cache = MemoryCache()
    cache.store("/a", make_response(body=b"old"))
    cache.handle_response("/a", make_response(body=b"new", etag='"v2"'))
    assert cache.get("/a").body == b"new"
    assert cache.get("/a").etag == '"v2"'


def test_clear_empties_cache():
    cache = MemoryCache()
    cache.store("/a", make_response())
    cache.clear()
    assert len(cache) == 0


def test_disk_cache_uses_two_files_per_object(tmp_path):
    """The libwww layout the paper calls a performance bottleneck."""
    cache = TwoFileDiskCache(str(tmp_path / "cache"))
    cache.store("/images/logo.gif", make_response(body=b"GIF89a..."))
    files = sorted(p.name for p in (tmp_path / "cache").iterdir())
    assert len(files) == 2
    assert any(name.endswith(".headers") for name in files)
    assert any(name.endswith(".body") for name in files)
    entry = cache.get("/images/logo.gif")
    assert entry.body == b"GIF89a..."
    assert entry.etag == '"v1"'
    assert cache.file_operations >= 4


def test_disk_cache_clear(tmp_path):
    cache = TwoFileDiskCache(str(tmp_path / "cache"))
    cache.store("/a", make_response())
    cache.clear()
    assert cache.get("/a") is None


# ----------------------------------------------------------------------
# Server-side validation predicate
# ----------------------------------------------------------------------
def test_etag_match_means_not_modified():
    assert is_not_modified('"v1"', None, '"v1"', None)
    assert not is_not_modified('"v1"', None, '"v2"', None)


def test_etag_list_and_star():
    assert is_not_modified('"b"', None, '"a", "b"', None)
    assert is_not_modified('"anything"', None, "*", None)


def test_etag_takes_precedence_over_date():
    date = format_http_date(PAPER_EPOCH)
    # ETag mismatch: modified, even though the date would match.
    assert not is_not_modified('"v2"', date, '"v1"', date)


def test_date_comparison():
    earlier = format_http_date(PAPER_EPOCH)
    later = format_http_date(PAPER_EPOCH + 3600)
    assert is_not_modified(None, earlier, None, later)
    assert is_not_modified(None, earlier, None, earlier)
    assert not is_not_modified(None, later, None, earlier)


def test_no_validators_means_modified():
    assert not is_not_modified('"v1"', "whenever", None, None)
