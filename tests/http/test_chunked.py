"""Unit and property tests for the chunked transfer coding."""

from hypothesis import given, strategies as st

from repro.http import ChunkedDecoder, encode_chunked


def decode_all(wire: bytes, step: int = 7) -> bytes:
    decoder = ChunkedDecoder()
    buffer = bytearray()
    done = False
    for i in range(0, len(wire), step):
        buffer.extend(wire[i:i + step])
        done = decoder.feed_buffer(buffer)
    assert done
    return decoder.payload()


def test_empty_body():
    assert decode_all(encode_chunked(b"")) == b""


def test_simple_roundtrip():
    body = b"hello chunked world"
    assert decode_all(encode_chunked(body, chunk_size=5)) == body


def test_trailing_pipelined_data_left_in_buffer():
    wire = encode_chunked(b"abc") + b"NEXT MESSAGE"
    decoder = ChunkedDecoder()
    buffer = bytearray(wire)
    assert decoder.feed_buffer(buffer)
    assert decoder.payload() == b"abc"
    assert bytes(buffer) == b"NEXT MESSAGE"


def test_chunk_extensions_ignored():
    wire = b"3;ext=1\r\nabc\r\n0\r\n\r\n"
    assert decode_all(wire, step=100) == b"abc"


def test_trailer_headers_consumed():
    wire = b"2\r\nhi\r\n0\r\nX-Checksum: 99\r\n\r\nREST"
    decoder = ChunkedDecoder()
    buffer = bytearray(wire)
    assert decoder.feed_buffer(buffer)
    assert decoder.payload() == b"hi"
    assert bytes(buffer) == b"REST"


@given(st.binary(max_size=2000), st.integers(min_value=1, max_value=97))
def test_roundtrip_property(body, chunk_size):
    wire = encode_chunked(body, chunk_size=chunk_size)
    assert decode_all(wire, step=13) == body


@given(st.binary(max_size=500), st.integers(min_value=1, max_value=11))
def test_roundtrip_any_slicing(body, step):
    wire = encode_chunked(body, chunk_size=7)
    assert decode_all(wire, step=step) == body
