"""Unit tests for byte ranges and If-Range."""

import pytest
from hypothesis import given, strategies as st

from repro.http import (ByteRange, Headers, apply_range, content_range,
                        if_range_matches, parse_range_header)


def test_simple_range():
    ranges = parse_range_header("bytes=0-99", 1000)
    assert ranges == [ByteRange(0, 99)]
    assert ranges[0].length == 100


def test_open_ended_range():
    assert parse_range_header("bytes=500-", 600) == [ByteRange(500, 599)]


def test_suffix_range():
    assert parse_range_header("bytes=-100", 600) == [ByteRange(500, 599)]


def test_suffix_larger_than_entity():
    assert parse_range_header("bytes=-9999", 100) == [ByteRange(0, 99)]


def test_end_clamped_to_entity():
    assert parse_range_header("bytes=0-9999", 50) == [ByteRange(0, 49)]


def test_multiple_ranges():
    ranges = parse_range_header("bytes=0-9, 20-29", 100)
    assert ranges == [ByteRange(0, 9), ByteRange(20, 29)]


def test_unsatisfiable_range():
    assert parse_range_header("bytes=500-600", 100) == []


def test_non_bytes_unit_raises():
    with pytest.raises(ValueError):
        parse_range_header("lines=1-2", 100)


def test_malformed_spec_raises():
    with pytest.raises(ValueError):
        parse_range_header("bytes=abc", 100)


def test_zero_suffix_ignored():
    assert parse_range_header("bytes=-0", 100) == []


def test_content_range_format():
    assert content_range(ByteRange(0, 99), 1000) == "bytes 0-99/1000"


def test_apply_range_sets_headers():
    headers = Headers()
    body = bytes(range(100))
    partial = apply_range(body, headers, ByteRange(10, 19))
    assert partial == bytes(range(10, 20))
    assert headers.get("Content-Range") == "bytes 10-19/100"
    assert headers.get("Content-Length") == "10"


def test_if_range_absent_allows_range():
    assert if_range_matches(None, '"v1"', None)


def test_if_range_etag():
    assert if_range_matches('"v1"', '"v1"', None)
    assert not if_range_matches('"v1"', '"v2"', None)
    assert not if_range_matches('"v1"', None, None)


def test_if_range_date():
    date = "Tue, 24 Jun 1997 00:00:00 GMT"
    assert if_range_matches(date, None, date)
    assert not if_range_matches(date, None, "Wed, 25 Jun 1997 00:00:00 GMT")


@given(st.binary(min_size=1, max_size=500), st.data())
def test_range_slice_property(body, data):
    start = data.draw(st.integers(0, len(body) - 1))
    end = data.draw(st.integers(start, len(body) - 1))
    ranges = parse_range_header(f"bytes={start}-{end}", len(body))
    assert ranges[0].slice(body) == body[start:end + 1]
