"""Unit tests for the Headers multimap."""

import pytest

from repro.http import Headers


def test_case_insensitive_lookup():
    h = Headers([("Content-Type", "text/html")])
    assert h.get("content-type") == "text/html"
    assert h.get("CONTENT-TYPE") == "text/html"
    assert "cOnTeNt-TyPe" in h


def test_original_spelling_preserved_on_wire():
    h = Headers([("X-WeIrD", "v")])
    assert h.to_bytes() == b"X-WeIrD: v\r\n"


def test_add_keeps_duplicates_set_replaces():
    h = Headers()
    h.add("Accept", "a")
    h.add("Accept", "b")
    assert h.get_all("accept") == ["a", "b"]
    h.set("Accept", "c")
    assert h.get_all("accept") == ["c"]


def test_remove_returns_count():
    h = Headers([("A", "1"), ("a", "2"), ("B", "3")])
    assert h.remove("A") == 2
    assert "A" not in h
    assert h.get("B") == "3"


def test_get_default():
    assert Headers().get("Missing", "fallback") == "fallback"
    assert Headers().get("Missing") is None


def test_get_int():
    h = Headers([("Content-Length", " 42 "), ("Bad", "xyz")])
    assert h.get_int("Content-Length") == 42
    assert h.get_int("Bad") is None
    assert h.get_int("Missing") is None


def test_contains_token():
    h = Headers([("Connection", "Keep-Alive, Upgrade")])
    assert h.contains_token("Connection", "keep-alive")
    assert h.contains_token("connection", "upgrade")
    assert not h.contains_token("Connection", "close")


def test_from_lines_roundtrip():
    original = Headers([("Host", "www26.w3.org"), ("Accept", "*/*")])
    lines = original.to_bytes().decode("latin-1").split("\r\n")
    parsed = Headers.from_lines([ln for ln in lines if ln])
    assert parsed == original


def test_from_lines_folds_continuations():
    parsed = Headers.from_lines(["X-Long: part one", "\tpart two"])
    assert parsed.get("X-Long") == "part one part two"


def test_from_lines_rejects_garbage():
    with pytest.raises(ValueError):
        Headers.from_lines(["no colon here"])


def test_copy_is_independent():
    h = Headers([("A", "1")])
    copy = h.copy()
    copy.set("A", "2")
    assert h.get("A") == "1"


def test_len_and_iter():
    h = Headers([("A", "1"), ("B", "2")])
    assert len(h) == 2
    assert list(h) == [("A", "1"), ("B", "2")]
