"""Unit tests for HTTP date handling."""

from repro.http import PAPER_EPOCH, format_http_date, parse_http_date


def test_paper_epoch_renders_correctly():
    assert format_http_date(PAPER_EPOCH) == "Tue, 24 Jun 1997 00:00:00 GMT"


def test_roundtrip():
    stamp = PAPER_EPOCH + 12345.0
    assert parse_http_date(format_http_date(stamp)) == stamp


def test_parse_rfc850_form():
    assert parse_http_date("Tuesday, 24-Jun-97 00:00:00 GMT") == PAPER_EPOCH


def test_parse_asctime_form():
    assert parse_http_date("Tue Jun 24 00:00:00 1997") == PAPER_EPOCH


def test_unparseable_returns_none():
    assert parse_http_date("not a date") is None
    assert parse_http_date("") is None
