"""Tests for multipart/byteranges encoding and parsing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.http import (ByteRange, MULTIPART_BOUNDARY,
                        encode_multipart_byteranges,
                        parse_multipart_byteranges)


CONTENT_TYPE = f"multipart/byteranges; boundary={MULTIPART_BOUNDARY}"


def roundtrip(body, ranges):
    wire = encode_multipart_byteranges(body, ranges, "image/gif")
    return parse_multipart_byteranges(wire, CONTENT_TYPE)


def test_two_ranges_roundtrip():
    body = bytes(range(256))
    parts = roundtrip(body, [ByteRange(0, 9), ByteRange(100, 119)])
    assert len(parts) == 2
    assert parts[0] == (ByteRange(0, 9), body[:10])
    assert parts[1] == (ByteRange(100, 119), body[100:120])


def test_payload_ending_in_crlf_bytes_preserved():
    body = b"abc\r\ndef\r\n"
    parts = roundtrip(body, [ByteRange(0, len(body) - 1)])
    assert parts[0][1] == body


def test_binary_payload_with_boundary_like_bytes():
    body = b"xx--almost_a_boundary\r\nyy" * 3
    parts = roundtrip(body, [ByteRange(2, 20)])
    assert parts[0][1] == body[2:21]


def test_each_part_carries_content_range():
    body = bytes(50)
    wire = encode_multipart_byteranges(body, [ByteRange(0, 4),
                                              ByteRange(10, 14)],
                                       "text/html")
    assert wire.count(b"Content-Range: bytes") == 2
    assert wire.count(b"Content-Type: text/html") == 2
    assert wire.endswith(f"--{MULTIPART_BOUNDARY}--\r\n".encode())


def test_parse_requires_boundary():
    with pytest.raises(ValueError):
        parse_multipart_byteranges(b"", "multipart/byteranges")


def test_parse_rejects_part_without_content_range():
    wire = (f"--{MULTIPART_BOUNDARY}\r\n".encode()
            + b"Content-Type: a/b\r\n\r\ndata\r\n"
            + f"--{MULTIPART_BOUNDARY}--\r\n".encode())
    with pytest.raises(ValueError):
        parse_multipart_byteranges(wire, CONTENT_TYPE)


def test_server_serves_multipart(tmp_path):
    from repro.content import build_microscape_site
    from repro.http import HTTP11, Headers, Request
    from repro.server import APACHE, ResourceStore
    from repro.server.static import build_response
    store = ResourceStore.from_site(build_microscape_site())
    response = build_response(
        store, Request("GET", "/gifs/hero.gif", HTTP11,
                       Headers([("Range", "bytes=0-99, 200-299")])),
        APACHE)
    assert response.status == 206
    content_type = response.headers.get("Content-Type")
    assert content_type.startswith("multipart/byteranges")
    parts = parse_multipart_byteranges(response.body, content_type)
    body = store.get("/gifs/hero.gif").body
    assert parts[0] == (ByteRange(0, 99), body[:100])
    assert parts[1] == (ByteRange(200, 299), body[200:300])


@settings(max_examples=30)
@given(st.binary(min_size=1, max_size=400), st.data())
def test_multipart_roundtrip_property(body, data):
    n_ranges = data.draw(st.integers(1, 4))
    ranges = []
    for _ in range(n_ranges):
        start = data.draw(st.integers(0, len(body) - 1))
        end = data.draw(st.integers(start, len(body) - 1))
        ranges.append(ByteRange(start, end))
    parts = roundtrip(body, ranges)
    assert [p[0] for p in parts] == ranges
    for byte_range, payload in parts:
        assert payload == byte_range.slice(body)
