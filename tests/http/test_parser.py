"""Unit tests for the incremental request/response parsers."""

import pytest

from repro.http import (Headers, ParseError, Request, RequestParser,
                        Response, ResponseParser)


def drip_feed(parser, data, step=3):
    """Feed data in tiny slices, collecting completed messages."""
    out = []
    for i in range(0, len(data), step):
        out.extend(parser.feed(data[i:i + step]))
    return out


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def test_single_request():
    parser = RequestParser()
    reqs = parser.feed(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
    assert len(reqs) == 1
    assert reqs[0].method == "GET"
    assert reqs[0].target == "/x"
    assert reqs[0].version == (1, 1)
    assert reqs[0].headers.get("Host") == "h"


def test_pipelined_requests_in_one_chunk():
    wire = (b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
            b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n"
            b"HEAD /c HTTP/1.1\r\nHost: h\r\n\r\n")
    reqs = RequestParser().feed(wire)
    assert [r.target for r in reqs] == ["/a", "/b", "/c"]
    assert reqs[2].method == "HEAD"


def test_request_split_at_every_byte():
    wire = (b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
            b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n")
    for step in (1, 2, 5, 7, 100):
        parser = RequestParser()
        reqs = drip_feed(parser, wire, step)
        assert [r.target for r in reqs] == ["/a", "/b"]


def test_request_with_body():
    wire = (b"POST /submit HTTP/1.1\r\nHost: h\r\n"
            b"Content-Length: 5\r\n\r\nhello")
    reqs = RequestParser().feed(wire)
    assert reqs[0].body == b"hello"


def test_request_with_chunked_body():
    wire = (b"POST /submit HTTP/1.1\r\nHost: h\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
            b"3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n")
    reqs = RequestParser().feed(wire)
    assert reqs[0].body == b"abcde"


def test_http09_simple_request():
    reqs = RequestParser().feed(b"GET /old\r\n\r\n")
    assert reqs[0].version == (0, 9)


def test_bare_lf_line_endings_accepted():
    reqs = RequestParser().feed(b"GET /x HTTP/1.0\nHost: h\n\n")
    assert reqs[0].target == "/x"


def test_malformed_request_line_raises():
    with pytest.raises(ParseError):
        RequestParser().feed(b"BROKEN\r\n\r\n")


def test_oversized_header_block_raises():
    parser = RequestParser()
    with pytest.raises(ParseError):
        parser.feed(b"GET / HTTP/1.1\r\n" + b"X: y\r\n" * 20000)


def test_roundtrip_serialized_request():
    original = Request("GET", "/img.gif", (1, 1),
                       Headers([("Host", "h"), ("Accept", "*/*")]))
    reqs = RequestParser().feed(original.to_bytes())
    assert reqs[0].method == original.method
    assert reqs[0].headers == original.headers


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def test_single_response_with_content_length():
    parser = ResponseParser()
    parser.expect("GET")
    resps = parser.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody")
    assert resps[0].status == 200
    assert resps[0].body == b"body"


def test_pipelined_responses_share_segments():
    parser = ResponseParser()
    for _ in range(3):
        parser.expect("GET")
    wire = b"".join(
        Response(200, headers=Headers([("Content-Length", "1")]),
                 body=bytes([65 + i])).to_bytes()
        for i in range(3))
    resps = drip_feed(parser, wire, step=4)
    assert [r.body for r in resps] == [b"A", b"B", b"C"]


def test_head_response_has_no_body():
    parser = ResponseParser()
    parser.expect("HEAD")
    parser.expect("GET")
    wire = (b"HTTP/1.1 200 OK\r\nContent-Length: 999\r\n\r\n"
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
    resps = parser.feed(wire)
    assert len(resps) == 2
    assert resps[0].body == b""
    assert resps[1].body == b"ok"


def test_304_response_has_no_body():
    parser = ResponseParser()
    parser.expect("GET")
    parser.expect("GET")
    wire = (b"HTTP/1.1 304 Not Modified\r\nETag: \"v1\"\r\n\r\n"
            b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nz")
    resps = parser.feed(wire)
    assert [r.status for r in resps] == [304, 200]


def test_chunked_response_body():
    parser = ResponseParser()
    parser.expect("GET")
    wire = (b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
    resps = drip_feed(parser, wire, step=2)
    assert resps[0].body == b"hello world"


def test_close_delimited_response_needs_eof():
    parser = ResponseParser()
    parser.expect("GET")
    assert parser.feed(b"HTTP/1.0 200 OK\r\n\r\npartial bo") == []
    assert parser.feed(b"dy") == []
    final = parser.eof()
    assert final is not None
    assert final.body == b"partial body"


def test_eof_mid_headers_raises():
    parser = ResponseParser()
    parser.expect("GET")
    parser.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc")
    with pytest.raises(ParseError):
        parser.eof()


def test_eof_with_nothing_pending_returns_none():
    assert ResponseParser().eof() is None


def test_outstanding_tracks_expectations():
    parser = ResponseParser()
    parser.expect("GET")
    parser.expect("GET")
    assert parser.outstanding == 2
    parser.feed(b"HTTP/1.1 304 Not Modified\r\n\r\n")
    assert parser.outstanding == 1


def test_response_roundtrip_with_deflate_body():
    import zlib
    body = zlib.compress(b"<html>" + b"x" * 500 + b"</html>")
    original = Response(200, headers=Headers([
        ("Content-Encoding", "deflate"),
        ("Content-Length", str(len(body)))]), body=body)
    parser = ResponseParser()
    parser.expect("GET")
    resps = parser.feed(original.to_bytes())
    assert zlib.decompress(resps[0].body).startswith(b"<html>")
