"""Property-based fuzzing of the HTTP parsers.

Pipelining makes parser robustness load-bearing: any message boundary
can fall anywhere in the TCP stream.  These tests generate random valid
message sequences, slice them arbitrarily, and require byte-exact
recovery — and require that arbitrary garbage never crashes the parser
with anything other than ``ParseError``.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.http import (Headers, ParseError, Request, RequestParser,
                        Response, ResponseParser, encode_chunked)

_token = st.text(alphabet=string.ascii_letters + string.digits,
                 min_size=1, max_size=10)
_path = st.lists(_token, min_size=1, max_size=4).map(
    lambda parts: "/" + "/".join(parts))
_header_value = st.text(
    alphabet=string.ascii_letters + string.digits + " -/.;=\"",
    min_size=0, max_size=30).map(str.strip)
_headers = st.lists(st.tuples(_token, _header_value), max_size=5)


@st.composite
def requests(draw):
    method = draw(st.sampled_from(["GET", "HEAD", "POST"]))
    headers = Headers(draw(_headers))
    headers.remove("Content-Length")
    headers.remove("Transfer-Encoding")
    body = b""
    if method == "POST":
        body = draw(st.binary(max_size=200))
        if draw(st.booleans()):
            headers.set("Content-Length", str(len(body)))
        else:
            headers.set("Transfer-Encoding", "chunked")
    request = Request(method, draw(_path), (1, 1), headers)
    if headers.contains_token("Transfer-Encoding", "chunked"):
        wire = request.to_bytes() + encode_chunked(body, chunk_size=48)
    else:
        wire = request.to_bytes() + body
    request.body = body
    return request, wire


@st.composite
def responses(draw):
    method = draw(st.sampled_from(["GET", "HEAD"]))
    status = draw(st.sampled_from([200, 206, 304, 404]))
    headers = Headers(draw(_headers))
    headers.remove("Content-Length")
    headers.remove("Transfer-Encoding")
    body = b""
    response = Response(status, (1, 1), headers, request_method=method)
    if method == "GET" and status not in (204, 304):
        body = draw(st.binary(max_size=300))
        if draw(st.booleans()):
            headers.set("Content-Length", str(len(body)))
            response.body = body
            wire = response.to_bytes()
        else:
            headers.set("Transfer-Encoding", "chunked")
            wire = response.to_bytes() + encode_chunked(body,
                                                        chunk_size=64)
    else:
        headers.set("Content-Length", str(len(body)))
        wire = response.to_bytes()
    response.body = body
    return response, method, wire


def slices(data: bytes, cuts):
    """Split ``data`` at the (sorted, deduped) cut offsets."""
    offsets = sorted({min(c, len(data)) for c in cuts})
    pieces = []
    last = 0
    for offset in offsets:
        pieces.append(data[last:offset])
        last = offset
    pieces.append(data[last:])
    return pieces


@settings(max_examples=60, deadline=None)
@given(st.lists(requests(), min_size=1, max_size=5), st.data())
def test_request_stream_roundtrip(items, data):
    wire = b"".join(w for _, w in items)
    cuts = data.draw(st.lists(st.integers(0, max(0, len(wire))),
                              max_size=12))
    parser = RequestParser()
    parsed = []
    for piece in slices(wire, cuts):
        parsed.extend(parser.feed(piece))
    assert len(parsed) == len(items)
    for (original, _), result in zip(items, parsed):
        assert result.method == original.method
        assert result.target == original.target
        assert result.body == original.body


@settings(max_examples=60, deadline=None)
@given(st.lists(responses(), min_size=1, max_size=5), st.data())
def test_response_stream_roundtrip(items, data):
    wire = b"".join(w for _, _, w in items)
    parser = ResponseParser()
    for _, method, _ in items:
        parser.expect(method)
    cuts = data.draw(st.lists(st.integers(0, max(0, len(wire))),
                              max_size=12))
    parsed = []
    for piece in slices(wire, cuts):
        parsed.extend(parser.feed(piece))
    assert len(parsed) == len(items)
    for (original, _, _), result in zip(items, parsed):
        assert result.status == original.status
        assert result.body == original.body


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=400))
def test_garbage_never_crashes_request_parser(noise):
    parser = RequestParser()
    try:
        parser.feed(noise)
    except ParseError:
        pass        # the only acceptable exception


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=400))
def test_garbage_never_crashes_response_parser(noise):
    parser = ResponseParser()
    parser.expect("GET")
    try:
        parser.feed(noise)
        parser.eof()
    except ParseError:
        pass


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=200), st.binary(max_size=200))
def test_valid_prefix_then_garbage(prefix_body, noise):
    """A valid message followed by garbage: the message still parses."""
    good = Response(200, (1, 1),
                    Headers([("Content-Length", str(len(prefix_body)))]),
                    body=prefix_body)
    parser = ResponseParser()
    parser.expect("GET")
    parser.expect("GET")
    try:
        parsed = parser.feed(good.to_bytes() + noise)
    except ParseError:
        parsed = []
    if parsed:
        assert parsed[0].body == prefix_body
