"""Unit tests for the simulated TCP layer: handshake, data transfer,
slow start, Nagle, delayed ACKs, and close semantics."""

import pytest

from repro.simnet import (LAN, Segment, TcpConfig, TwoHostNetwork,
                          CLIENT_HOST, SERVER_HOST)


def make_net(**kwargs):
    return TwoHostNetwork(LAN, **kwargs)


class EchoServer:
    """Accepts connections and echoes received bytes back."""

    def __init__(self, net, port=80):
        self.received = []
        net.server.listen(port, self._accept)

    def _accept(self, conn):
        conn.on_data = self._data

    def _data(self, conn, data):
        self.received.append(data)
        conn.send(data)


class Collector:
    """Gathers client-side events for assertions."""

    def __init__(self):
        self.data = bytearray()
        self.connected = False
        self.eof = False
        self.reset = False
        self.closed = False

    def attach(self, conn):
        conn.on_connect = lambda c: setattr(self, "connected", True)
        conn.on_data = lambda c, d: self.data.extend(d)
        conn.on_eof = lambda c: setattr(self, "eof", True)
        conn.on_reset = lambda c: setattr(self, "reset", True)
        conn.on_closed = lambda c: setattr(self, "closed", True)


def test_three_way_handshake_packets():
    net = make_net()
    net.server.listen(80, lambda conn: None)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    net.run()
    assert collector.connected
    flags = [r.flags for r in net.trace.records]
    assert flags[:3] == ["S", "SA", "A"]


def test_data_round_trip():
    net = make_net()
    server = EchoServer(net)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    conn.send(b"hello world")
    net.run()
    assert bytes(collector.data) == b"hello world"
    assert server.received == [b"hello world"]


def test_send_before_establishment_is_queued():
    net = make_net()
    EchoServer(net)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    conn.send(b"early data")
    net.run()
    assert bytes(collector.data) == b"early data"


def test_large_transfer_segmented_at_mss():
    net = make_net()
    EchoServer(net)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    payload = bytes(10 * 1460)
    conn.send(payload)
    net.run()
    assert bytes(collector.data) == payload
    data_sizes = [r.payload_len for r in net.trace.records
                  if r.src == CLIENT_HOST and r.payload_len]
    assert max(data_sizes) == 1460


def test_slow_start_grows_window():
    """First flight is limited by the initial cwnd, later flights larger."""
    config = TcpConfig(initial_cwnd_segments=1)
    net = TwoHostNetwork(LAN, client_config=config)
    net.server.listen(80, lambda conn: None)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(bytes(20 * 1460))
    net.run()
    client_data = [r for r in net.trace.records
                   if r.src == CLIENT_HOST and r.payload_len]
    # The first data segment must be alone in its flight: the second
    # segment can only go out after the first ACK returns.
    first_times = sorted(r.time for r in client_data)
    assert first_times[1] > first_times[0] + net.environment.rtt * 0.5


def test_half_close_allows_continued_receive():
    """Client closes its send side; server can still send afterwards."""
    net = make_net()
    server_conns = []
    net.server.listen(80, server_conns.append)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    conn.send(b"request")
    conn.close()
    net.run()

    assert collector.connected
    server_conn = server_conns[0]
    server_conn.send(b"late response")
    server_conn.close()
    net.run()
    assert bytes(collector.data) == b"late response"
    assert collector.eof
    assert collector.closed


def test_clean_close_both_sides_reach_closed():
    net = make_net()
    server_conns = []

    def accept(conn):
        server_conns.append(conn)
        conn.on_eof = lambda c: c.close()

    net.server.listen(80, accept)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    conn.send(b"bye")
    conn.close()
    net.run()
    assert conn.state == "CLOSED"
    assert server_conns[0].state == "CLOSED"
    assert collector.closed


def test_fin_piggybacks_on_last_data_segment():
    net = make_net()
    net.server.listen(80, lambda conn: None)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(b"small final write")
    conn.close()
    net.run()
    fa = [r for r in net.trace.records
          if r.src == CLIENT_HOST and "F" in r.flags]
    assert len(fa) == 1
    assert fa[0].payload_len == len(b"small final write")


def test_send_after_close_raises():
    net = make_net()
    net.server.listen(80, lambda conn: None)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.close()
    with pytest.raises(Exception):
        conn.send(b"too late")


def test_data_to_receive_shutdown_socket_triggers_rst():
    """The paper's naive-close scenario: data hitting a closed receive
    side draws a RST and the peer observes a reset."""
    net = make_net()
    server_conns = []
    net.server.listen(80, server_conns.append)
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 80)
    collector.attach(conn)
    conn.send(b"first")
    net.run()

    server_conn = server_conns[0]
    server_conn.close()
    server_conn.shutdown_receive()
    conn.send(b"pipelined request arriving after server closed")
    net.run()
    assert collector.reset
    rst = [r for r in net.trace.records if "R" in r.flags]
    assert rst, "expected a RST segment in the trace"


def test_segment_to_unknown_port_draws_rst():
    net = make_net()
    collector = Collector()
    conn = net.client.connect(SERVER_HOST, 9999)  # nobody listening
    collector.attach(conn)
    net.run()
    assert collector.reset
    assert not collector.connected


def test_nagle_delays_second_small_write():
    """With Nagle on, two small writes coalesce: the second waits for
    the ACK of the first."""
    net = make_net()
    EchoServer(net)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.set_nodelay(False)

    def send_two(_conn):
        conn.send(b"a" * 10)
        conn.send(b"b" * 10)

    conn.on_connect = send_two
    net.run()
    client_data = [r for r in net.trace.records
                   if r.src == CLIENT_HOST and r.payload_len]
    assert client_data[0].payload_len == 10
    # Second write held back and sent alone after the first ACK.
    assert client_data[1].payload_len == 10
    assert client_data[1].time > client_data[0].time


def test_nodelay_sends_small_writes_immediately():
    net = make_net()
    EchoServer(net)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.set_nodelay(True)
    sent_times = []

    def send_two(_conn):
        conn.send(b"a" * 10)
        conn.send(b"b" * 10)
        sent_times.append(net.sim.now)

    conn.on_connect = send_two
    net.run()
    client_data = [r for r in net.trace.records
                   if r.src == CLIENT_HOST and r.payload_len]
    # Both small segments left at the same simulated instant.
    assert client_data[0].time == pytest.approx(client_data[1].time)


def test_delayed_ack_fires_after_200ms_for_lone_segment():
    net = make_net()
    net.server.listen(80, lambda conn: None)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(b"lone segment")
    net.run()
    acks = [r for r in net.trace.records
            if r.src == SERVER_HOST and r.flags == "A" and not r.payload_len]
    # SYN-ACK is "SA"; the pure ACK of the data should exist and be late.
    data_time = next(r.time for r in net.trace.records
                     if r.src == CLIENT_HOST and r.payload_len)
    late_acks = [a for a in acks if a.time >= data_time + 0.19]
    assert late_acks, "expected a delayed ACK ~200 ms after the data"


def test_every_second_segment_acked_immediately():
    net = make_net()
    net.server.listen(80, lambda conn: None)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(bytes(2 * 1460))
    net.run(until=0.1)  # well before the 200 ms delack timer
    acks = [r for r in net.trace.records
            if r.src == SERVER_HOST and r.flags == "A"]
    assert acks, "two full segments should trigger an immediate ACK"


def test_connection_count_statistics():
    net = make_net()
    EchoServer(net)
    for _ in range(3):
        conn = net.client.connect(SERVER_HOST, 80)
        conn.send(b"x")
        conn.close()
    net.run()
    assert net.client.total_connections == 3
    assert net.server.total_connections == 3
    assert net.trace.summary().connections == 3


def test_trace_summary_overhead_formula():
    net = make_net()
    EchoServer(net)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(b"z" * 100)
    net.run()
    summary = net.trace.summary()
    expected = 100.0 * (40 * summary.packets) / (
        summary.payload_bytes + 40 * summary.packets)
    assert summary.percent_overhead == pytest.approx(expected)
