"""Engine hot-path behaviour: lazy cancellation, purge, safety valve.

These pin the properties the PR-2 rewrite introduced (and one bug it
fixed): the ``max_events`` valve fires exactly ``max_events`` events,
``pending_events`` counts only live events in O(1), cancelled entries
never advance the clock, and the heap cannot grow without bound when
connections churn timers.
"""

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.engine import _PURGE_MIN_DEAD


def test_safety_valve_fires_exactly_max_events():
    sim = Simulator()
    fired = []

    def forever():
        fired.append(sim.now)
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)
    # The pre-fix valve let max_events + 1 callbacks run.
    assert len(fired) == 100


def test_pending_events_counts_live_only():
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending_events() == 10
    for event in events[:4]:
        event.cancel()
    assert sim.pending_events() == 6
    # Under the purge threshold the dead entries stay buried.
    assert sim.heap_size() == 10


def test_cancelled_event_does_not_advance_clock():
    sim = Simulator()
    late = sim.schedule(5.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    late.cancel()
    sim.run()
    assert sim.now == 1.0


def test_heap_bounded_across_timer_churn():
    """Open/close-style churn: every cycle schedules timers and cancels
    them all (as a connection arming and disarming RTO / delayed-ACK
    timers does).  The opportunistic purge must keep the raw heap near
    the live count instead of accumulating every cancelled entry."""
    sim = Simulator()
    cycles, timers_per_cycle = 400, 10
    for i in range(cycles):
        events = [sim.schedule(1000.0 + i + j, lambda: None)
                  for j in range(timers_per_cycle)]
        for event in events:
            event.cancel()
    assert sim.pending_events() == 0
    # Without purging the heap would hold all cycles * timers_per_cycle
    # entries; with it, at most a threshold's worth of dead ones remain.
    assert sim.heap_size() <= 2 * _PURGE_MIN_DEAD
    assert sim.perf.heap_purges > 0
    total = cycles * timers_per_cycle
    assert sim.perf.events_cancelled + sim.heap_size() == total


def test_perf_counters_track_engine_work():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    doomed = sim.schedule(3.0, lambda: None)
    assert sim.perf.heap_peak == 3
    doomed.cancel()
    sim.run()
    assert sim.perf.events_processed == 2
    assert sim.perf.events_cancelled == 1


def test_purge_preserves_firing_order():
    sim = Simulator()
    fired = []
    keep = []
    for i in range(3 * _PURGE_MIN_DEAD):
        event = sim.schedule(1.0 + (i % 7) * 0.25, fired.append, i)
        if i % 3 == 0:
            keep.append((event.time, event.seq, i))
        else:
            event.cancel()   # triggers purges along the way
    assert sim.perf.heap_purges > 0
    sim.run()
    assert fired == [i for _, _, i in sorted(keep)]
