"""Golden-trace regression tests for the simulator hot-path rewrite.

The engine/TCP/trace optimization is only acceptable if it is
*behaviour-preserving at the packet level*: the fixtures under
``fixtures/`` were captured with the pre-optimization engine (WAN,
Apache, seed 0, first-time) and every line — timestamps, flags,
sequence numbers, lengths — must still match byte for byte.  Any
intentional protocol change must re-capture them (see the module
docstring in ``repro.simnet.engine`` before doing so).
"""

import pathlib

import pytest

from repro.core.runner import run_experiment

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

GOLDEN_CELLS = [
    ("HTTP/1.0", "golden_http10-4conn_wan.trace"),
    ("HTTP/1.1", "golden_persistent_wan.trace"),
    ("HTTP/1.1 Pipelined", "golden_pipelined_wan.trace"),
    ("HTTP/1.1 Pipelined w. compression", "golden_pipelined-deflate_wan.trace"),
    # The post-paper modes: captured at their introduction, same cell.
    ("HTTP/MUX", "golden_mux_wan.trace"),
    ("HTTP/MUX Push", "golden_mux-push_wan.trace"),
    ("HTTP/1.1 Sharded x4", "golden_sharded-x4_wan.trace"),
]


@pytest.mark.parametrize("mode,fixture", GOLDEN_CELLS,
                         ids=[fixture for _, fixture in GOLDEN_CELLS])
def test_trace_matches_golden_fixture(mode, fixture):
    result = run_experiment(mode, "first-time", environment="WAN",
                            profile="Apache", seed=0, keep_trace=True)
    expected = (FIXTURES / fixture).read_text()
    actual = result.trace_lines + "\n"
    if actual != expected:
        expected_lines = expected.splitlines()
        actual_lines = actual.splitlines()
        for i, (want, got) in enumerate(zip(expected_lines, actual_lines)):
            assert got == want, (
                f"{fixture}: first divergence at line {i + 1}:\n"
                f"  expected: {want}\n  actual:   {got}")
        pytest.fail(f"{fixture}: line count changed "
                    f"({len(expected_lines)} -> {len(actual_lines)})")


def test_keep_trace_off_by_default():
    result = run_experiment("HTTP/1.1", "first-time", environment="WAN",
                            profile="Apache", seed=0)
    assert result.trace_lines is None
