"""Property-based tests of TCP stream semantics.

Whatever the application does — arbitrary write sizes, interleavings,
half-closes from either side, Nagle on or off, loss or not — the
delivered byte streams must be exact, ordered and complete, EOFs must
follow the last byte, and both endpoints must reach CLOSED.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import LAN, SERVER_HOST, TcpConfig, TwoHostNetwork


class Peer:
    """Scripted application endpoint: a list of (delay, action) steps."""

    def __init__(self, net, conn, script):
        self.net = net
        self.conn = conn
        self.received = bytearray()
        self.eof = False
        self.closed = False
        self.sent = bytearray()
        conn.on_data = lambda c, d: self.received.extend(d)
        conn.on_eof = lambda c: setattr(self, "eof", True)
        conn.on_closed = lambda c: setattr(self, "closed", True)
        at = 0.0
        for delay, action, payload in script:
            at += delay
            net.sim.schedule(max(at, 1e-6), self._act, action, payload)

    def _act(self, action, payload):
        if self.conn.state == "CLOSED":
            return
        if action == "send":
            try:
                self.conn.send(payload)
                self.sent.extend(payload)
            except Exception:
                pass        # send after close: application error, fine
        elif action == "close":
            self.conn.close()


def script_strategy():
    payloads = st.binary(min_size=1, max_size=4000)
    step = st.tuples(st.floats(min_value=0.0, max_value=0.05),
                     st.just("send"), payloads)
    return st.lists(step, min_size=0, max_size=6)


@settings(max_examples=40, deadline=None)
@given(script_strategy(), script_strategy(), st.booleans(),
       st.floats(min_value=0.0, max_value=0.08),
       st.integers(0, 2 ** 31 - 1))
def test_bidirectional_stream_integrity(client_script, server_script,
                                        nodelay, loss, seed):
    net = TwoHostNetwork(LAN, seed=seed)
    net.link.loss_rate = loss
    net.link.rng = random.Random(seed)
    server_peer = {}

    def accept(conn):
        conn.set_nodelay(nodelay)
        script = list(server_script) + [(0.3, "close", b"")]
        server_peer["peer"] = Peer(net, conn, script)

    net.server.listen(80, accept)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.set_nodelay(nodelay)
    client = Peer(net, conn, list(client_script) + [(0.3, "close", b"")])
    net.run(until=400.0)
    net.sim.run()

    server = server_peer["peer"]
    # Byte streams are exact in both directions.
    assert bytes(server.received) == bytes(client.sent)
    assert bytes(client.received) == bytes(server.sent)
    # Both sides saw EOF and closed cleanly.
    assert client.eof and server.eof
    assert conn.state == "CLOSED"
    assert server.conn.state == "CLOSED"


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_simultaneous_close(seed):
    """Both sides close at the same instant: the simultaneous-close
    corner of the state machine must still converge to CLOSED."""
    net = TwoHostNetwork(LAN, seed=seed)
    conns = {}

    def accept(conn):
        conns["server"] = conn

    net.server.listen(80, accept)
    client = net.client.connect(SERVER_HOST, 80)
    client.send(b"x")
    net.run()
    server = conns["server"]
    net.sim.schedule(0.001, client.close)
    net.sim.schedule(0.001, server.close)
    net.run()
    assert client.state == "CLOSED"
    assert server.state == "CLOSED"
