"""Tests for TCP loss recovery: retransmission, RTO, fast retransmit,
out-of-order reassembly."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import (LAN, WAN, SERVER_HOST, Simulator, TcpConfig,
                          TwoHostNetwork)
from repro.simnet.link import Link
from repro.simnet.tcp import TcpStack


def lossy_net(loss_rate, seed=1, env=LAN, mss=1460):
    net = TwoHostNetwork(env, seed=seed)
    net.link.loss_rate = loss_rate
    net.link.rng = random.Random(seed)
    return net


class Sink:
    def __init__(self):
        self.data = bytearray()
        self.eof = False
        self.closed = False

    def attach(self, conn):
        conn.on_data = lambda c, d: self.data.extend(d)
        conn.on_eof = lambda c: setattr(self, "eof", True)
        conn.on_closed = lambda c: setattr(self, "closed", True)


def transfer(net, payload):
    sink = Sink()

    def accept(conn):
        sink.attach(conn)
        conn.on_eof = lambda c: (setattr(sink, "eof", True), c.close())

    net.server.listen(80, accept)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(payload, close=True)
    net.run()
    return sink, conn


def test_lossless_path_has_no_retransmissions():
    net = lossy_net(0.0)
    payload = bytes(50 * 1460)
    sink, conn = transfer(net, payload)
    assert bytes(sink.data) == payload
    assert conn.retransmissions == 0
    assert net.link.segments_dropped == 0


@pytest.mark.parametrize("loss", [0.02, 0.05, 0.10])
def test_bulk_transfer_survives_loss(loss):
    net = lossy_net(loss, seed=3)
    payload = bytes(range(256)) * 200        # ~51 KB, checkable content
    sink, conn = transfer(net, payload)
    assert bytes(sink.data) == payload       # in order, complete, exact
    assert sink.eof
    assert net.link.segments_dropped > 0
    assert conn.retransmissions > 0


def test_syn_loss_recovers_by_timeout():
    net = lossy_net(0.0)
    # Drop exactly the first segment (the SYN).
    original = net.link.transmit
    dropped = []

    def drop_first(segment):
        if not dropped:
            dropped.append(segment)
            net.link.segments_dropped += 1
            return
        original(segment)

    net.link.transmit = drop_first
    sink, conn = transfer(net, b"hello after syn loss")
    assert bytes(sink.data) == b"hello after syn loss"
    assert conn.retransmissions >= 1
    assert conn.timeouts >= 1
    assert net.sim.now >= 1.0    # paid the RTO floor


def test_fin_loss_recovers():
    net = lossy_net(0.0)
    original = net.link.transmit

    def drop_fins_once(segment, dropped=[]):
        if segment.flag_fin and not dropped:
            dropped.append(segment)
            return
        original(segment)

    net.link.transmit = drop_fins_once
    sink, conn = transfer(net, b"payload")
    assert bytes(sink.data) == b"payload"
    assert sink.eof


def test_fast_retransmit_fires_before_rto():
    """Drop one mid-stream data segment; three dup ACKs repair it long
    before the 1 s timeout."""
    net = lossy_net(0.0, env=WAN)
    original = net.link.transmit
    state = {"count": 0}

    def drop_fifth_data(segment):
        if segment.payload_len and segment.src != SERVER_HOST:
            state["count"] += 1
            if state["count"] == 5:
                net.link.segments_dropped += 1
                return
        original(segment)

    net.link.transmit = drop_fifth_data
    payload = bytes(30 * 1460)
    sink, conn = transfer(net, payload)
    assert bytes(sink.data) == payload
    assert conn.fast_retransmits >= 1
    assert net.sim.now < 3.0     # no 3 s initial-RTO stall


def test_out_of_order_segments_reassembled():
    """Deliver segments 2,3 before 1 via a reordering shim."""
    net = lossy_net(0.0)
    original = net.link.transmit
    held = []

    def reorder(segment):
        if segment.payload_len and segment.src != SERVER_HOST \
                and not held:
            held.append(segment)     # hold the first data segment
            return
        original(segment)
        if held and segment.payload_len:
            original(held.pop())     # release it after the next one

    net.link.transmit = reorder
    payload = bytes(range(256)) * 20
    sink, conn = transfer(net, payload)
    assert bytes(sink.data) == payload


def test_duplicate_data_reacked():
    """A spurious retransmission of delivered data draws an immediate
    ACK and is not re-delivered to the application."""
    net = lossy_net(0.0)
    sink = Sink()
    conns = []

    def accept(conn):
        conns.append(conn)
        sink.attach(conn)

    net.server.listen(80, accept)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.send(b"once only")
    net.run()
    assert bytes(sink.data) == b"once only"
    # Inject a spurious retransmission of the already-delivered data.
    from repro.simnet.packet import Segment
    spurious = Segment(net.client.host, conn.local_port, SERVER_HOST, 80,
                       seq=1, ack=conn.rcv_nxt, payload=b"once only",
                       flag_ack=True)
    conn._retransmit_queue.append(spurious)
    conn._retransmit_first()
    conn._retransmit_queue.clear()
    net.run()
    assert bytes(sink.data) == b"once only"   # not duplicated
    reacks = [r for r in net.trace.records
              if r.src == SERVER_HOST and r.flags == "A"]
    assert reacks, "expected an immediate re-ACK of duplicate data"


def test_rtt_estimator_converges():
    net = TwoHostNetwork(WAN)
    sink = Sink()

    def accept(conn):
        conn.on_data = lambda c, d: c.send(d)

    net.server.listen(80, accept)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.set_nodelay(True)
    for _ in range(10):
        conn.send(b"x" * 100)
        net.run()
    assert conn._srtt is not None
    # WAN RTT is 90 ms; the estimate should be in its neighbourhood.
    assert 0.05 <= conn._srtt <= 0.35


def test_timeout_resets_congestion_window():
    net = lossy_net(0.0)
    original = net.link.transmit
    state = {"count": 0}

    def drop_burst(segment):
        if segment.payload_len and segment.src != SERVER_HOST:
            state["count"] += 1
            if 3 <= state["count"] <= 12:
                net.link.segments_dropped += 1
                return      # black-hole a burst: dup acks can't repair
        original(segment)

    net.link.transmit = drop_burst
    payload = bytes(40 * 1460)
    sink, conn = transfer(net, payload)
    assert bytes(sink.data) == payload
    assert conn.timeouts >= 1


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2 ** 31 - 1),
       st.floats(min_value=0.0, max_value=0.12),
       st.integers(1, 40))
def test_reliable_delivery_property(seed, loss, n_chunks):
    """Whatever the loss pattern, the byte stream arrives complete,
    in order, and exactly once."""
    net = lossy_net(loss, seed=seed)
    rng = random.Random(seed)
    payload = bytes(rng.randrange(256)
                    for _ in range(rng.randrange(1, n_chunks * 1460)))
    sink, conn = transfer(net, payload)
    assert bytes(sink.data) == payload
    assert sink.eof
