"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    sim.schedule(3.25, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(3.25)


def test_zero_delay_event_runs_after_current():
    sim = Simulator()
    fired = []

    def outer():
        sim.schedule(0.0, fired.append, "inner")
        fired.append("outer")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending_events() == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert fired == ["a", "b"]


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, fired.append, "never")
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == pytest.approx(5.0)


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0.0, reenter)
    sim.run()
    assert len(errors) == 1
