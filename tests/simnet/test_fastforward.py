"""The flow-level fast-forward driver: identity, engagement, fallback.

Every test compares against the per-segment path byte for byte — the
fast path's entire contract is that it is *unobservable* in the trace.
"""

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.link import ENVIRONMENTS
from repro.simnet.network import SERVER_HOST, TwoHostNetwork
from repro.simnet.tcp import TcpConfig


def _bulk(environment, size, *, fastpath, modem_compression=None,
          mutate=None, **net_kwargs):
    """Stream ``size`` bytes server -> client; return the finished net."""
    net = TwoHostNetwork(ENVIRONMENTS[environment], seed=0, jitter=0.02,
                         fastpath=fastpath,
                         modem_compression=modem_compression,
                         **net_kwargs)
    if mutate is not None:
        mutate(net)
    body = (bytes(range(256)) * (size // 256 + 1))[:size]

    def on_accept(conn):
        conn.on_connect = lambda c: c.send(body, close=True)

    net.server.listen(80, on_accept)
    received = [0]
    client = net.client.connect(SERVER_HOST, 80)
    client.on_data = lambda _c, data: received.__setitem__(
        0, received[0] + len(data))
    net.run()
    assert received[0] == size
    return net


def _identical(environment, size, **kwargs):
    fast = _bulk(environment, size, fastpath=True, **kwargs)
    slow = _bulk(environment, size, fastpath=False, **kwargs)
    assert fast.trace.records == slow.trace.records
    assert slow.sim.perf.fastforward_spans == 0
    return fast, slow


def test_wan_bulk_byte_identical_and_engages():
    fast, slow = _identical("WAN", 256 * 1024)
    perf = fast.sim.perf
    assert perf.fastforward_spans > 0
    assert perf.segments_synthesized > 0
    # The span replaced real event processing, not added to it.
    assert perf.events_processed < slow.sim.perf.events_processed


def test_ppp_bulk_byte_identical_without_modem():
    fast, _slow = _identical("PPP", 128 * 1024, modem_compression=False)
    assert fast.sim.perf.fastforward_spans > 0


def test_ppp_bulk_byte_identical_with_modem_compression():
    # The LZW dictionary is stateful across segments: the span must
    # feed it the exact same payloads in the exact same order.
    fast, _slow = _identical("PPP", 64 * 1024, modem_compression=True)
    assert fast.sim.perf.fastforward_spans > 0
    assert fast.modem_down.raw_bytes == _slow.modem_down.raw_bytes
    assert (fast.modem_down.transmitted_bytes
            == _slow.modem_down.transmitted_bytes)


def test_lan_bulk_byte_identical():
    fast, _slow = _identical("LAN", 512 * 1024)
    assert fast.sim.perf.fastforward_spans > 0


def test_network_fastpath_flag_disables_driver():
    net = _bulk("WAN", 64 * 1024, fastpath=False)
    assert net.fastforward is None
    assert net.sim.perf.fastforward_spans == 0


def test_tcp_config_fastpath_disables_driver():
    config = TcpConfig(mss=1460, fastpath=False)
    net = _bulk("WAN", 64 * 1024, fastpath=True, client_config=config)
    assert net.fastforward is None
    assert net.sim.perf.fastforward_spans == 0


def test_lossy_link_never_fast_forwards():
    def add_loss(net):
        net.link.loss_rate = 0.05

    fast = _bulk("WAN", 64 * 1024, fastpath=True, mutate=add_loss)
    slow = _bulk("WAN", 64 * 1024, fastpath=False, mutate=add_loss)
    assert fast.sim.perf.fastforward_spans == 0
    assert fast.trace.records == slow.trace.records


def test_extra_tap_never_fast_forwards():
    # A second observer (the live sanitizer, a debug tap) would miss
    # synthesized segments — eligibility must refuse.
    def add_tap(net):
        net.link.taps.append(lambda segment, now: None)

    fast = _bulk("WAN", 64 * 1024, fastpath=True, mutate=add_tap)
    assert fast.sim.perf.fastforward_spans == 0


def test_droptail_queue_never_fast_forwards():
    def limit(net):
        net.link.queue_limit_packets = 64

    fast = _bulk("WAN", 64 * 1024, fastpath=True, mutate=limit)
    slow = _bulk("WAN", 64 * 1024, fastpath=False, mutate=limit)
    assert fast.sim.perf.fastforward_spans == 0
    assert fast.trace.records == slow.trace.records


def test_short_transfer_never_fast_forwards():
    # Below min_queue_bytes the TCP layer never flags a candidate:
    # short responses are all Nagle/PSH/FIN tail.
    net = _bulk("WAN", 2 * 1460, fastpath=True)
    assert net.sim.perf.fastforward_spans == 0


def test_http_pipelined_run_byte_identical():
    # Full-stack identity through run_experiment.  Pipelined responses
    # queue back-to-back, so the driver probes once — and the span,
    # broken immediately by the client's next request batch, trips the
    # profitability veto: the rest of the page runs per-segment with
    # no further heap surgery.
    from repro.core.runner import run_experiment
    kw = dict(environment="WAN", profile="Apache", seed=0,
              keep_trace=True)
    fast = run_experiment("HTTP/1.1 Pipelined", "first-time",
                          fastpath=True, **kw)
    slow = run_experiment("HTTP/1.1 Pipelined", "first-time",
                          fastpath=False, **kw)
    assert fast.trace_lines == slow.trace_lines
    # The profitability veto allows at most one probe span per
    # connection before per-segment execution takes over for good.
    assert fast.trace.perf.fastforward_spans <= 1


def test_dirty_callback_mid_span_byte_identical():
    # The MUX-credit regime, distilled: the receiver sends a small
    # frame from inside on_data mid-span.  The callback must observe
    # exact live receiver state (rcv_nxt feeds the piggybacked ACK)
    # and its delayed-ACK cancel must survive into the span's
    # replicated _schedule_ack.  The default profitability threshold
    # keeps the driver out of flows with interleaved chatter, so arm
    # it lower explicitly to force engagement.
    def run(fastpath):
        net = TwoHostNetwork(ENVIRONMENTS["WAN"], seed=0, jitter=0.02,
                             fastpath=fastpath)
        if net.fastforward is not None:
            net.fastforward.min_queue_bytes = 4 * 1460
        body = (bytes(range(256)) * 257)[:64 * 1024]

        def on_accept(conn):
            conn.on_connect = lambda c: c.send(body, close=True)

        net.server.listen(80, on_accept)
        state = {"got": 0, "credited": 0}
        client = net.client.connect(SERVER_HOST, 80)

        def on_data(c, data):
            state["got"] += len(data)
            while (state["got"] - state["credited"] >= 16 * 1024
                   and state["credited"] < 48 * 1024):
                state["credited"] += 16 * 1024
                c.send(b"CREDIT 16384\r\n")

        client.on_data = on_data
        net.run()
        assert state["got"] == 64 * 1024
        return net

    fast, slow = run(True), run(False)
    assert fast.trace.records == slow.trace.records
    assert fast.sim.perf.fastforward_spans > 0


# ----------------------------------------------------------------------
# Engine surgery: extract / reinsert bookkeeping
# ----------------------------------------------------------------------
def test_extract_and_reinsert_preserve_count_and_tie_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    middle = sim.schedule(1.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "c")
    entry = next(e for e in sim._heap if e[2] is middle)
    sim.extract_events([middle])
    assert sim.pending_events() == 2
    sim.reinsert_entry(entry)
    assert sim.pending_events() == 3
    sim.run()
    # Original (time, seq) preserved: tie-break order is untouched.
    assert fired == ["a", "b", "c"]
    assert sim.pending_events() == 0


def test_extract_unknown_event_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    other = Simulator().schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.extract_events([other])


def test_cancel_while_extracted_does_not_double_count():
    # A timer disarm racing an extraction must not decrement the live
    # count twice: extracted events are detached from the simulator.
    sim = Simulator()
    victim = sim.schedule(1.0, lambda: None)
    keeper = sim.schedule(2.0, lambda: None)
    sim.extract_events([victim])
    assert sim.pending_events() == 1
    victim.cancel()                       # stray cancel: flag-only no-op
    assert sim.pending_events() == 1
    entry = next(e for e in sim._heap if e[2] is keeper)
    assert entry[2] is keeper             # heap untouched by the cancel
    sim.run()
    assert sim.pending_events() == 0


def test_reinsert_cancelled_event_raises():
    sim = Simulator()
    victim = sim.schedule(1.0, lambda: None)
    entry = next(e for e in sim._heap if e[2] is victim)
    sim.extract_events([victim])
    victim.cancel()
    with pytest.raises(SimulationError):
        sim.reinsert_entry(entry)


def test_pending_exact_when_cancelled_event_rescheduled_in_callback(
        monkeypatch):
    # The purge-accounting regression: an event cancelled and then
    # re-scheduled from inside its own callback window (a timer re-arm)
    # while the purge threshold is low must leave pending_events exact.
    from repro.simnet import engine
    monkeypatch.setattr(engine, "_PURGE_MIN_DEAD", 1)
    sim = Simulator()
    fired = []
    box = {}

    def rearm():
        box["event"].cancel()             # cancel the standing event...
        box["event"] = sim.schedule(1.0, fired.append, "rearmed")
        # ...and force purge pressure while the replacement is pending.
        doomed = [sim.schedule(5.0, fired.append, "doomed")
                  for _ in range(4)]
        for event in doomed:
            event.cancel()

    box["event"] = sim.schedule(2.0, fired.append, "original")
    sim.schedule(1.0, rearm)
    sim.run(until=1.5)
    assert sim.pending_events() == 1      # exactly the re-armed event
    sim.run()
    assert fired == ["rearmed"]
    assert sim.pending_events() == 0
