"""Unit tests for the link model and network environments."""

import pytest

from repro.simnet import (ENVIRONMENTS, LAN, PPP, WAN, Link, Segment,
                          Simulator)


def make_link(**kwargs):
    sim = Simulator()
    link = Link(sim, kwargs.pop("bandwidth_bps", 8000.0),
                kwargs.pop("propagation_delay", 0.01), **kwargs)
    return sim, link


def seg(payload=b"", src="a", dst="b"):
    return Segment(src, 1, dst, 2, payload=payload)


def test_environments_match_table1():
    assert set(ENVIRONMENTS) == {"LAN", "WAN", "PPP"}
    assert LAN.rtt < 0.001
    assert 0.08 <= WAN.rtt <= 0.1
    assert 0.14 <= PPP.rtt <= 0.16
    for env in ENVIRONMENTS.values():
        assert env.mss == 1460
    assert PPP.bandwidth_bps == 28_800
    assert LAN.bandwidth_bps == 10_000_000
    assert PPP.modem_compression
    assert not LAN.modem_compression


def test_delivery_time_includes_serialization_and_propagation():
    sim, link = make_link(bandwidth_bps=8000.0, propagation_delay=0.5)
    arrivals = []
    link.attach("a", lambda s: None)
    link.attach("b", lambda s: arrivals.append(sim.now))
    link.transmit(seg(payload=bytes(60)))   # wire = 100 B = 800 bits
    sim.run()
    assert arrivals[0] == pytest.approx(0.1 + 0.5)


def test_same_direction_serializes_fifo():
    sim, link = make_link(bandwidth_bps=8000.0, propagation_delay=0.0)
    arrivals = []
    link.attach("a", lambda s: None)
    link.attach("b", lambda s: arrivals.append(sim.now))
    link.transmit(seg(payload=bytes(60)))
    link.transmit(seg(payload=bytes(60)))
    sim.run()
    assert arrivals == [pytest.approx(0.1), pytest.approx(0.2)]


def test_opposite_directions_are_independent():
    sim, link = make_link(bandwidth_bps=8000.0, propagation_delay=0.0)
    arrivals = {}
    link.attach("a", lambda s: arrivals.setdefault("a", sim.now))
    link.attach("b", lambda s: arrivals.setdefault("b", sim.now))
    link.transmit(seg(payload=bytes(60), src="a", dst="b"))
    link.transmit(seg(payload=bytes(60), src="b", dst="a"))
    sim.run()
    assert arrivals["a"] == pytest.approx(0.1)
    assert arrivals["b"] == pytest.approx(0.1)


def test_unknown_destination_rejected():
    sim, link = make_link()
    link.attach("a", lambda s: None)
    with pytest.raises(ValueError):
        link.transmit(seg(src="a", dst="nowhere"))


def test_duplicate_attach_rejected():
    sim, link = make_link()
    link.attach("a", lambda s: None)
    with pytest.raises(ValueError):
        link.attach("a", lambda s: None)


def test_taps_see_segments_at_send_time():
    sim, link = make_link(propagation_delay=1.0)
    link.attach("a", lambda s: None)
    link.attach("b", lambda s: None)
    seen = []
    link.taps.append(lambda s, now: seen.append(now))
    link.transmit(seg())
    assert seen == [0.0]


def test_jitter_is_seeded_and_bounded():
    import random
    times = []
    for _ in range(2):
        sim, link = make_link(bandwidth_bps=8000.0,
                              propagation_delay=0.0, jitter=0.1,
                              rng=random.Random(7))
        arrivals = []
        link.attach("a", lambda s: None)
        link.attach("b", lambda s: arrivals.append(sim.now))
        link.transmit(seg(payload=bytes(60)))
        sim.run()
        times.append(arrivals[0])
    assert times[0] == times[1]                 # same seed, same result
    assert 0.09 <= times[0] <= 0.11             # within +/-10%


def test_ppp_framing_is_more_expensive_per_byte():
    assert PPP.bits_per_byte > 8
    assert LAN.bits_per_byte == 8


def test_compressor_reduces_transmission_time():
    class HalfCompressor:
        def wire_bytes(self, payload):
            return len(payload) // 2

    sim, link = make_link(bandwidth_bps=8000.0, propagation_delay=0.0)
    arrivals = []
    link.attach("a", lambda s: None)
    link.attach("b", lambda s: arrivals.append(sim.now))
    link.set_compressor("a", "b", HalfCompressor())
    link.transmit(seg(payload=bytes(120)))  # wire = 40 + 60 = 100 B
    sim.run()
    assert arrivals[0] == pytest.approx(0.1)
