"""Tests for TCP flow control: advertised windows, slow readers,
zero-window stalls and persist probes."""

import pytest

from repro.simnet import (LAN, SERVER_HOST, TcpConfig, TwoHostNetwork)


def make_net(client_rwnd=8192):
    net = TwoHostNetwork(
        LAN,
        client_config=TcpConfig(mss=1460, rwnd=client_rwnd),
        server_config=TcpConfig(mss=1460))
    return net


class SlowReader:
    """A client that pauses reading after connecting."""

    def __init__(self, net, paused=True):
        self.net = net
        self.data = bytearray()
        self.eof = False
        self.conn = net.client.connect(SERVER_HOST, 80)
        self.conn.set_nodelay(True)
        if paused:
            self.conn.pause_reading()
        self.conn.on_data = lambda c, d: self.data.extend(d)
        self.conn.on_eof = lambda c: setattr(self, "eof", True)


def serve_bulk(net, payload):
    def accept(conn):
        conn.set_nodelay(True)
        conn.on_data = lambda c, d: c.send(payload, close=True)

    net.server.listen(80, accept)


def test_window_advertised_on_segments():
    net = make_net(client_rwnd=4096)
    serve_bulk(net, b"x" * 100)
    reader = SlowReader(net, paused=False)
    reader.conn.send(b"go")
    net.run()
    client_segments = [r for r in net.trace.records
                       if r.src != SERVER_HOST]
    assert client_segments   # traced; window checked via TCP state
    assert reader.conn._advertised_window() == 4096


def test_sender_stalls_at_receivers_window():
    """A paused reader caps the unread data near its receive window."""
    net = make_net(client_rwnd=8192)
    payload = bytes(100 * 1460)          # 146 KB to a stalled reader
    serve_bulk(net, payload)
    reader = SlowReader(net, paused=True)
    reader.conn.send(b"go")
    net.run(until=5.0)
    # Nothing delivered, and at most rwnd(+1 probe byte) buffered.
    assert reader.data == bytearray()
    assert 0 < reader.conn.recv_buffered <= 8192 + 1
    assert not reader.eof


def test_resume_drains_buffer_and_completes():
    net = make_net(client_rwnd=8192)
    payload = bytes(range(256)) * 400    # ~100 KB
    serve_bulk(net, payload)
    reader = SlowReader(net, paused=True)
    reader.conn.send(b"go")
    net.run(until=3.0)
    resumed_chunks = []

    # Resume periodically, as a slow application would.
    def resume_tick():
        reader.conn.resume_reading()
        resumed_chunks.append(len(reader.data))
        if not reader.eof:
            reader.conn.pause_reading()
            net.sim.schedule(0.05, resume_tick)

    net.sim.schedule(0.0, resume_tick)
    net.run()
    assert bytes(reader.data) == payload
    assert reader.eof
    # Progress happened across multiple window openings.
    assert len([c for c in resumed_chunks if c]) > 3


def test_eof_deferred_until_buffer_drained():
    """FIN must not surface before the buffered data."""
    net = make_net(client_rwnd=65535)
    payload = b"ordered payload " * 10
    serve_bulk(net, payload)
    reader = SlowReader(net, paused=True)
    order = []
    reader.conn.on_data = lambda c, d: order.append(("data", bytes(d)))
    reader.conn.on_eof = lambda c: order.append(("eof", b""))
    reader.conn.send(b"go")
    net.run()
    assert order == []          # everything held while paused
    reader.conn.resume_reading()
    assert order[-1][0] == "eof"
    assert b"".join(d for kind, d in order if kind == "data") == payload


def test_zero_window_probe_prevents_deadlock():
    """Sender with a full window probes; transfer completes after the
    reader resumes even though no window update was pending."""
    net = make_net(client_rwnd=2920)     # two segments
    payload = bytes(10 * 1460)
    serve_bulk(net, payload)
    reader = SlowReader(net, paused=True)
    reader.conn.send(b"go")
    net.run(until=4.0)
    assert reader.conn.recv_buffered <= 2920 + 2
    # Probes happened (1-byte reliable segments past the window).
    server_conn_probes = [r for r in net.trace.records
                          if r.src == SERVER_HOST and r.payload_len == 1]
    assert server_conn_probes
    net.sim.schedule(0.0, reader.conn.resume_reading)
    net.run(until=8.0)
    reader.conn.resume_reading()
    net.run()
    assert bytes(reader.data) == payload


def test_window_update_not_counted_as_dup_ack():
    """Window updates must not trigger spurious fast retransmits.

    The window shrinks and re-opens repeatedly but never reaches zero,
    so no persist probes (and hence no genuine retransmissions) occur;
    any fast retransmit would be the dup-ack guard failing.
    """
    net = make_net(client_rwnd=65535)
    payload = bytes(20 * 1460)
    server_conns = []

    def accept(conn):
        server_conns.append(conn)
        conn.set_nodelay(True)
        conn.on_data = lambda c, d: c.send(payload, close=True)

    net.server.listen(80, accept)
    reader = SlowReader(net, paused=True)
    reader.conn.send(b"go")
    # Open and close the window a few times while data streams.
    for _ in range(6):
        net.run(until=net.sim.now + 0.01)
        reader.conn.resume_reading()
        reader.conn.pause_reading()
    reader.conn.resume_reading()
    net.run()
    assert bytes(reader.data) == payload
    assert server_conns[0].fast_retransmits == 0
    assert server_conns[0].retransmissions == 0


def test_fast_reader_unaffected():
    """Default auto-consuming connections never buffer or stall."""
    net = make_net(client_rwnd=65535)
    payload = bytes(50 * 1460)
    serve_bulk(net, payload)
    reader = SlowReader(net, paused=False)
    reader.conn.send(b"go")
    net.run()
    assert bytes(reader.data) == payload
    assert reader.conn.recv_buffered == 0
    assert net.sim.now < 0.5
