"""Unit and property tests for the V.42bis-style modem compressor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.modem import (LzwDecoder, LzwEncoder, ModemCompressor,
                                lzw_compress, lzw_decompress)


def test_lzw_roundtrip_simple():
    codes, _bits = lzw_compress(b"the quick brown fox " * 20)
    assert lzw_decompress(codes) == b"the quick brown fox " * 20


def test_lzw_roundtrip_empty():
    codes, _ = lzw_compress(b"")
    assert lzw_decompress(codes) == b""


def test_lzw_streaming_matches_oneshot():
    data = b"abcabcabcabd" * 50
    streaming = LzwEncoder()
    for i in range(0, len(data), 7):
        streaming.encode(data[i:i + 7])
    streaming.finish()
    decoder = LzwDecoder()
    assert decoder.decode(streaming.codes_emitted) == data


def test_lzw_dictionary_reset_on_overflow():
    import random
    rng = random.Random(3)
    data = bytes(rng.randrange(256) for _ in range(40000))
    codes, _ = lzw_compress(data)
    assert 256 in codes[1:]        # CLEAR re-emitted mid-stream
    assert lzw_decompress(codes) == data


def test_max_string_limits_compression():
    data = b"abcdefghij" * 200
    unlimited = LzwEncoder(max_string=None)
    unlimited.encode(data)
    capped = LzwEncoder(max_string=3)
    capped.encode(data)
    assert capped.flush() > unlimited.flush()


def test_max_string_roundtrip():
    data = b"hello world, hello world, hello world" * 30
    encoder = LzwEncoder(max_string=6)
    encoder.encode(data)
    encoder.finish()
    assert LzwDecoder(max_string=6).decode(encoder.codes_emitted) == data


@settings(max_examples=40)
@given(st.binary(max_size=3000))
def test_lzw_roundtrip_property(data):
    codes, _ = lzw_compress(data)
    assert lzw_decompress(codes) == data


@settings(max_examples=20)
@given(st.binary(max_size=1000), st.integers(2, 10))
def test_lzw_capped_roundtrip_property(data, cap):
    encoder = LzwEncoder(max_string=cap)
    encoder.encode(data)
    encoder.finish()
    assert LzwDecoder(max_string=cap).decode(
        encoder.codes_emitted) == data


# ----------------------------------------------------------------------
# ModemCompressor
# ----------------------------------------------------------------------
def test_compressible_text_shrinks_on_wire():
    modem = ModemCompressor()
    text = b"GET /gifs/icon0.gif HTTP/1.1\r\nHost: www26.w3.org\r\n" * 40
    wire = modem.wire_bytes(text)
    assert wire < len(text)
    assert modem.compression_ratio > 1.0


def test_incompressible_data_stays_near_raw():
    import zlib
    deflated = zlib.compress(b"some html body " * 500)
    modem = ModemCompressor()
    wire = modem.wire_bytes(deflated)
    # Transparent mode: raw size plus the one-byte marker, at worst.
    assert wire <= len(deflated) + ModemCompressor.MODE_MARKER_BYTES


def test_dictionary_carries_across_packets():
    modem = ModemCompressor(efficiency=1.0)
    chunk = b"If-None-Match: \"0011223344\"\r\nAccept: */*\r\n\r\n"
    first = modem.wire_bytes(chunk)
    later = modem.wire_bytes(chunk)
    assert later < first


def test_empty_payload_costs_nothing():
    assert ModemCompressor().wire_bytes(b"") == 0


def test_efficiency_scales_savings():
    text = b"solutions products download support " * 100
    ideal = ModemCompressor(efficiency=1.0)
    real = ModemCompressor(efficiency=0.25)
    assert real.wire_bytes(text) > ideal.wire_bytes(text)


def _modem_link(sim):
    """A PPP-flavoured link with a modem pair on the a -> b direction."""
    from repro.simnet.link import Link
    link = Link(sim, 28_800.0, 0.075, bits_per_byte=10)
    link.set_compressor("a", "b", ModemCompressor())
    return link


def test_serialization_delay_uses_compressed_wire_bytes():
    from repro.simnet.engine import Simulator
    from repro.simnet.packet import HEADER_BYTES, Segment

    sim = Simulator()
    link = _modem_link(sim)
    arrivals = []
    link.attach("b", lambda seg: arrivals.append(sim.now))
    link.attach("a", lambda seg: None)
    payload = b"GET /gifs/icon0.gif HTTP/1.1\r\nHost: w3.org\r\n" * 30
    # An identical oracle modem predicts the on-the-wire size.
    oracle = ModemCompressor()
    wire = HEADER_BYTES + oracle.wire_bytes(payload)
    assert wire < HEADER_BYTES + len(payload)   # really compressed
    link.transmit(Segment("a", 1, "b", 2, payload=payload))
    sim.run()
    expected = wire * 10 / 28_800.0 + 0.075
    assert arrivals == [pytest.approx(expected)]


def test_busy_period_queues_second_segment():
    from repro.simnet.engine import Simulator
    from repro.simnet.packet import HEADER_BYTES, Segment

    sim = Simulator()
    link = _modem_link(sim)
    arrivals = []
    link.attach("b", lambda seg: arrivals.append((seg.seq, sim.now)))
    link.attach("a", lambda seg: None)
    payload = b"repetition repetition repetition " * 20
    oracle = ModemCompressor()
    wire1 = HEADER_BYTES + oracle.wire_bytes(payload)
    wire2 = HEADER_BYTES + oracle.wire_bytes(payload)
    assert wire2 < wire1        # the shared dictionary keeps learning
    link.transmit(Segment("a", 1, "b", 2, seq=1, payload=payload))
    link.transmit(Segment("a", 1, "b", 2, seq=2, payload=payload))
    sim.run()
    tx1 = wire1 * 10 / 28_800.0
    tx2 = wire2 * 10 / 28_800.0
    # FIFO busy period: the second transmission starts when the first
    # finishes, so its delivery stacks both serialization delays.
    assert arrivals[0] == (1, pytest.approx(tx1 + 0.075))
    assert arrivals[1] == (2, pytest.approx(tx1 + tx2 + 0.075))


def test_fastpath_preserves_link_busy_state_with_modem():
    # The fast-forward driver writes its synthesized transmissions
    # through the link's per-direction busy clock and the modem's LZW
    # dictionary; after a fast-forwarded bulk transfer both must match
    # per-segment execution exactly (so a later real transmit — or an
    # eligibility check that assumes an idle link — sees the same
    # world either way).
    from repro.simnet.link import ENVIRONMENTS
    from repro.simnet.network import SERVER_HOST, TwoHostNetwork

    def run(fastpath):
        net = TwoHostNetwork(ENVIRONMENTS["PPP"], seed=0, jitter=0.02,
                             fastpath=fastpath, modem_compression=True)
        body = (b"<html>" + b"row " * 400 + b"</html>") * 40

        def on_accept(conn):
            conn.on_connect = lambda c: c.send(body, close=True)

        net.server.listen(80, on_accept)
        net.client.connect(SERVER_HOST, 80)
        net.run()
        return net

    fast, slow = run(True), run(False)
    assert fast.sim.perf.fastforward_spans > 0
    assert fast.trace.records == slow.trace.records
    assert fast.link._next_free == slow.link._next_free
    assert (fast.modem_down.transmitted_bytes
            == slow.modem_down.transmitted_bytes)


def test_realized_ratio_matches_paper_ballpark():
    """The paper's modem moved HTML at ~1.15-1.4x the line rate."""
    from repro.content import build_microscape_site
    html = build_microscape_site().html.body
    modem = ModemCompressor()
    total_wire = 0
    for offset in range(0, len(html), 1460):
        total_wire += modem.wire_bytes(html[offset:offset + 1460])
    ratio = len(html) / total_wire
    assert 1.05 <= ratio <= 1.5
