"""Unit and property tests for the V.42bis-style modem compressor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.modem import (LzwDecoder, LzwEncoder, ModemCompressor,
                                lzw_compress, lzw_decompress)


def test_lzw_roundtrip_simple():
    codes, _bits = lzw_compress(b"the quick brown fox " * 20)
    assert lzw_decompress(codes) == b"the quick brown fox " * 20


def test_lzw_roundtrip_empty():
    codes, _ = lzw_compress(b"")
    assert lzw_decompress(codes) == b""


def test_lzw_streaming_matches_oneshot():
    data = b"abcabcabcabd" * 50
    streaming = LzwEncoder()
    for i in range(0, len(data), 7):
        streaming.encode(data[i:i + 7])
    streaming.finish()
    decoder = LzwDecoder()
    assert decoder.decode(streaming.codes_emitted) == data


def test_lzw_dictionary_reset_on_overflow():
    import random
    rng = random.Random(3)
    data = bytes(rng.randrange(256) for _ in range(40000))
    codes, _ = lzw_compress(data)
    assert 256 in codes[1:]        # CLEAR re-emitted mid-stream
    assert lzw_decompress(codes) == data


def test_max_string_limits_compression():
    data = b"abcdefghij" * 200
    unlimited = LzwEncoder(max_string=None)
    unlimited.encode(data)
    capped = LzwEncoder(max_string=3)
    capped.encode(data)
    assert capped.flush() > unlimited.flush()


def test_max_string_roundtrip():
    data = b"hello world, hello world, hello world" * 30
    encoder = LzwEncoder(max_string=6)
    encoder.encode(data)
    encoder.finish()
    assert LzwDecoder(max_string=6).decode(encoder.codes_emitted) == data


@settings(max_examples=40)
@given(st.binary(max_size=3000))
def test_lzw_roundtrip_property(data):
    codes, _ = lzw_compress(data)
    assert lzw_decompress(codes) == data


@settings(max_examples=20)
@given(st.binary(max_size=1000), st.integers(2, 10))
def test_lzw_capped_roundtrip_property(data, cap):
    encoder = LzwEncoder(max_string=cap)
    encoder.encode(data)
    encoder.finish()
    assert LzwDecoder(max_string=cap).decode(
        encoder.codes_emitted) == data


# ----------------------------------------------------------------------
# ModemCompressor
# ----------------------------------------------------------------------
def test_compressible_text_shrinks_on_wire():
    modem = ModemCompressor()
    text = b"GET /gifs/icon0.gif HTTP/1.1\r\nHost: www26.w3.org\r\n" * 40
    wire = modem.wire_bytes(text)
    assert wire < len(text)
    assert modem.compression_ratio > 1.0


def test_incompressible_data_stays_near_raw():
    import zlib
    deflated = zlib.compress(b"some html body " * 500)
    modem = ModemCompressor()
    wire = modem.wire_bytes(deflated)
    # Transparent mode: raw size plus the one-byte marker, at worst.
    assert wire <= len(deflated) + ModemCompressor.MODE_MARKER_BYTES


def test_dictionary_carries_across_packets():
    modem = ModemCompressor(efficiency=1.0)
    chunk = b"If-None-Match: \"0011223344\"\r\nAccept: */*\r\n\r\n"
    first = modem.wire_bytes(chunk)
    later = modem.wire_bytes(chunk)
    assert later < first


def test_empty_payload_costs_nothing():
    assert ModemCompressor().wire_bytes(b"") == 0


def test_efficiency_scales_savings():
    text = b"solutions products download support " * 100
    ideal = ModemCompressor(efficiency=1.0)
    real = ModemCompressor(efficiency=0.25)
    assert real.wire_bytes(text) > ideal.wire_bytes(text)


def test_realized_ratio_matches_paper_ballpark():
    """The paper's modem moved HTML at ~1.15-1.4x the line rate."""
    from repro.content import build_microscape_site
    html = build_microscape_site().html.body
    modem = ModemCompressor()
    total_wire = 0
    for offset in range(0, len(html), 1460):
        total_wire += modem.wire_bytes(html[offset:offset + 1460])
    ratio = len(html) / total_wire
    assert 1.05 <= ratio <= 1.5
