"""Tests for the drop-tail bottleneck queue."""

import pytest

from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork, WAN


def bulk_transfer(queue_limit, payload_segments=60):
    net = TwoHostNetwork(WAN)
    net.link.queue_limit_packets = queue_limit
    received = bytearray()
    done = {}

    def accept(conn):
        conn.on_data = lambda c, d: c.send(bytes(payload_segments * 1460),
                                           close=True)

    net.server.listen(80, accept)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.on_data = lambda c, d: received.extend(d)
    conn.on_eof = lambda c: done.setdefault("t", net.sim.now)
    conn.send(b"go")
    net.run()
    return net, received, done.get("t")


def test_unbounded_queue_never_drops():
    net, received, _ = bulk_transfer(None)
    assert net.link.segments_dropped == 0
    assert len(received) == 60 * 1460


def test_small_queue_drops_but_transfer_completes():
    net, received, finished = bulk_transfer(8)
    assert net.link.segments_dropped > 0
    assert len(received) == 60 * 1460      # loss recovery repaired it
    assert finished is not None


def test_deeper_queue_drops_less():
    shallow, _, _ = bulk_transfer(6)
    deep, _, _ = bulk_transfer(40)
    assert deep.link.segments_dropped <= shallow.link.segments_dropped


def test_queue_slots_recycle():
    """The queue depth is instantaneous occupancy, not a lifetime cap:
    far more packets than the limit traverse the link."""
    net, received, _ = bulk_transfer(8)
    total_packets = len(net.trace.records)
    assert total_packets > 8 * 5
    assert len(received) == 60 * 1460


def test_invalid_loss_rate_rejected():
    from repro.simnet import Link, Simulator
    with pytest.raises(ValueError):
        Link(Simulator(), 1000.0, 0.0, loss_rate=1.5)
