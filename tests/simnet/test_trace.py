"""Unit tests for the trace collector and its summaries."""

import pytest

from repro.simnet import (LAN, SERVER_HOST, CLIENT_HOST, TwoHostNetwork)


def run_exchange(n_connections=2, payload=b"x" * 500):
    net = TwoHostNetwork(LAN)

    def accept(conn):
        conn.on_data = lambda c, d: c.send(d)

    net.server.listen(80, accept)
    for _ in range(n_connections):
        conn = net.client.connect(SERVER_HOST, 80)
        conn.send(payload)
        conn.close()
    net.run()
    return net


def test_summary_counts_all_packets():
    net = run_exchange()
    summary = net.trace.summary()
    assert summary.packets == len(net.trace.records)
    assert summary.packets > 0
    assert summary.header_bytes == 40 * summary.packets


def test_direction_split_sums_to_total():
    net = run_exchange()
    summary = net.trace.summary()
    assert (summary.packets_client_to_server
            + summary.packets_server_to_client) == summary.packets
    assert summary.packets_client_to_server > 0
    assert summary.packets_server_to_client > 0


def test_connection_flow_grouping():
    net = run_exchange(n_connections=3)
    summary = net.trace.summary()
    assert summary.connections == 3
    trains = net.trace.packet_train_lengths()
    assert len(trains) == 3
    assert sum(trains) == summary.packets


def test_mean_packet_size():
    net = run_exchange()
    summary = net.trace.summary()
    assert summary.mean_packet_size == pytest.approx(
        summary.wire_bytes / summary.packets)


def test_format_trace_lines():
    net = run_exchange(n_connections=1)
    text = net.trace.format_trace(limit=3)
    lines = text.splitlines()
    assert len(lines) == 3
    assert "[S]" in lines[0]
    assert CLIENT_HOST in lines[0]


def test_time_sequence_only_data_packets():
    net = run_exchange(n_connections=1)
    points = net.trace.time_sequence(CLIENT_HOST)
    assert points
    assert all(seq > 0 for _, seq in points)
    times = [t for t, _ in points]
    assert times == sorted(times)


def test_clear_resets_collector():
    net = run_exchange()
    net.trace.clear()
    assert net.trace.summary().packets == 0
    assert net.trace.format_trace() == ""


def test_empty_summary_is_all_zero():
    net = TwoHostNetwork(LAN)
    summary = net.trace.summary()
    assert summary.packets == 0
    assert summary.percent_overhead == 0.0
    assert summary.duration == 0.0
