"""Unit and property tests for the incremental HTML tokenizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.content.htmlparse import HtmlTokenizer, Token, tokenize


def kinds(tokens):
    return [t.kind for t in tokens]


def test_simple_document():
    tokens = tokenize('<html><body class="x">hi</body></html>')
    assert kinds(tokens) == ["start", "start", "text", "end", "end"]
    assert tokens[0].data == "html"
    assert tokens[1].get("class") == "x"
    assert tokens[2].data == "hi"


def test_attribute_quoting_styles():
    tokens = tokenize('<img src="/a.gif" width=3 alt=\'x y\' border>')
    token = tokens[0]
    assert token.data == "img"
    assert token.get("src") == "/a.gif"
    assert token.get("width") == "3"
    assert token.get("alt") == "x y"
    assert token.get("border") == ""


def test_attribute_lookup_case_insensitive():
    token = tokenize('<IMG SRC="/a.gif">')[0]
    assert token.data == "img"
    assert token.get("SrC") == "/a.gif"


def test_newlines_inside_tags():
    tokens = tokenize('<img\n  src="/a.gif"\n  alt="multi">')
    assert tokens[0].get("src") == "/a.gif"


def test_comments_are_separate_tokens():
    tokens = tokenize('before<!-- <img src="/hidden.gif"> -->after')
    assert kinds(tokens) == ["text", "comment", "text"]
    assert "/hidden.gif" in tokens[1].data


def test_commented_images_not_discovered():
    from repro.content import find_image_urls
    html = '<img src="/real.gif"><!-- <img src="/fake.gif"> -->'
    assert find_image_urls(html) == ["/real.gif"]


def test_declaration():
    tokens = tokenize("<!DOCTYPE html><p>x</p>")
    assert tokens[0].kind == "declaration"
    assert tokens[0].data.lower().startswith("doctype")


def test_stray_angle_bracket_is_text():
    tokens = tokenize("a < b and <> then <p>x</p>")
    assert tokens[0].kind == "text"
    joined = "".join(t.data for t in tokens if t.kind == "text")
    assert "a " in joined


def test_incremental_matches_oneshot():
    html = ('<html><!-- note --><body>'
            + "".join(f'<img src="/i{n}.gif" alt="n{n}">'
                      for n in range(20))
            + "</body></html>")
    oneshot = tokenize(html)
    for step in (1, 2, 3, 7, 64):
        tokenizer = HtmlTokenizer()
        streamed = []
        for i in range(0, len(html), step):
            streamed.extend(tokenizer.feed(html[i:i + step]))
        streamed.extend(tokenizer.finish())
        # Text tokens may be split differently; compare non-text and
        # the concatenated text.
        assert [t for t in streamed if t.kind != "text"] == \
            [t for t in oneshot if t.kind != "text"]
        assert "".join(t.data for t in streamed if t.kind == "text") == \
            "".join(t.data for t in oneshot if t.kind == "text")


def test_comment_split_across_chunks():
    tokenizer = HtmlTokenizer()
    tokens = tokenizer.feed("<!")
    tokens += tokenizer.feed("-- hidden <img src=/x.gif> --")
    tokens += tokenizer.feed("><p>y</p>")
    assert kinds(tokens) == ["comment", "start", "text", "end"]


def test_microscape_tokenizes_fully():
    from repro.content import build_microscape_site
    html = build_microscape_site().html.body.decode("latin-1")
    tokens = tokenize(html)
    images = [t for t in tokens
              if t.kind == "start" and t.data == "img"]
    assert len(images) == 42
    assert all(t.get("src") for t in images)
    assert all(t.get("width") for t in images)


@settings(max_examples=50)
@given(st.text(alphabet="<>ab-! =\"'/", max_size=120),
       st.integers(1, 9))
def test_tokenizer_never_crashes_and_is_chunking_invariant(html, step):
    oneshot = tokenize(html)
    tokenizer = HtmlTokenizer()
    streamed = []
    for i in range(0, len(html), step):
        streamed.extend(tokenizer.feed(html[i:i + step]))
    streamed.extend(tokenizer.finish())
    assert [t for t in streamed if t.kind != "text"] == \
        [t for t in oneshot if t.kind != "text"]
