"""Tests for progressive-rendering coverage analysis."""

import pytest

from repro.content import encode_gif, encode_png, photo_like
from repro.content.progressive import (bytes_for_coverage, coverage_curve,
                                       gif_area_coverage,
                                       png_area_coverage)


@pytest.fixture(scope="module")
def image():
    return photo_like(100, 80, colors=64, seed=11, noise=0.3)


@pytest.fixture(scope="module")
def wires(image):
    return {
        "gif": encode_gif(image),
        "gif_i": encode_gif(image, interlace=True),
        "png": encode_png(image),
        "png_i": encode_png(image, interlace=True),
    }


def test_zero_prefix_zero_coverage(wires):
    assert gif_area_coverage(wires["gif"], 0) == 0.0
    assert png_area_coverage(wires["png"], 0) == 0.0
    assert gif_area_coverage(wires["gif"], 10) == 0.0


def test_full_file_full_coverage(wires):
    assert gif_area_coverage(wires["gif"], len(wires["gif"])) == 1.0
    assert png_area_coverage(wires["png"], len(wires["png"])) == 1.0
    assert gif_area_coverage(wires["gif_i"],
                             len(wires["gif_i"])) == 1.0
    assert png_area_coverage(wires["png_i"],
                             len(wires["png_i"])) == 1.0


def test_coverage_is_monotone(wires):
    for name, fn in (("gif", gif_area_coverage),
                     ("png", png_area_coverage),
                     ("gif_i", gif_area_coverage),
                     ("png_i", png_area_coverage)):
        curve = coverage_curve(wires[name], fn, points=16)
        values = [c for _, c in curve]
        assert values == sorted(values), name
        assert 0.0 <= values[0] and values[-1] == 1.0


def test_baseline_coverage_roughly_linear(wires):
    """Top-to-bottom decoding: half the bytes ≈ half the rows."""
    half = gif_area_coverage(wires["gif"], len(wires["gif"]) // 2)
    assert 0.25 <= half <= 0.75


def test_interlaced_formats_front_load_coverage(wires):
    """The progressive-display payoff the paper points at."""
    gif_90 = bytes_for_coverage(wires["gif"], gif_area_coverage, 0.9)
    gif_i_90 = bytes_for_coverage(wires["gif_i"], gif_area_coverage, 0.9)
    png_90 = bytes_for_coverage(wires["png"], png_area_coverage, 0.9)
    png_i_90 = bytes_for_coverage(wires["png_i"], png_area_coverage, 0.9)
    assert gif_i_90 < gif_90 / 2
    assert png_i_90 < png_90 / 2
    # "PNG also provides time to render benefits relative to GIF":
    # Adam7's first pass is 1/64 of the pixels vs GIF's 1/8 rows.
    assert png_i_90 < gif_i_90


def test_wrong_format_returns_zero(wires):
    assert gif_area_coverage(wires["png"], 100) == 0.0
    assert png_area_coverage(wires["gif"], 100) == 0.0


def test_truncated_lzw_decodes_prefix():
    from repro.content.gif import lzw_decode, lzw_encode
    data = bytes(range(250)) * 4
    encoded = lzw_encode(data, 8)
    partial = lzw_decode(encoded[:len(encoded) // 2], 8, strict=False)
    assert 0 < len(partial) < len(data)
    assert data.startswith(partial)
