"""Tests for the GIF→PNG/MNG and CSS-replacement analyses."""

import pytest

from repro.content import (ImageRole, apply_all_transforms,
                           build_microscape_site, convert_site_to_png,
                           css_replacement_analysis, decode_png,
                           find_image_urls)


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


@pytest.fixture(scope="module")
def png_report(site):
    return convert_site_to_png(site)


@pytest.fixture(scope="module")
def css_report(site):
    return css_replacement_analysis(site)


# ----------------------------------------------------------------------
# GIF -> PNG / MNG
# ----------------------------------------------------------------------
def test_png_conversion_saves_about_ten_percent(png_report):
    """Paper: 103,299 -> 92,096 bytes (10.8% saved) for static GIFs."""
    saving = png_report.static_saved / png_report.static_gif_total
    assert 0.04 <= saving <= 0.18


def test_mng_conversion_saves_about_a_third(png_report):
    """Paper: 24,988 -> 16,329 bytes (34.7% saved) for the animations."""
    saving = png_report.animation_saved / png_report.animation_gif_total
    assert 0.25 <= saving <= 0.50


def test_sub_200_byte_images_grow(site, png_report):
    """Paper: 'PNG does not perform as well on the very low bit depth
    images in the sub-200 byte category'."""
    for record in png_report.static:
        if record.gif_bytes < 200:
            assert record.converted_bytes > record.gif_bytes


def test_large_images_shrink(png_report):
    big = [r for r in png_report.static if r.gif_bytes > 3000]
    assert big
    assert all(r.saved > 0 for r in big)


def test_gamma_chunk_accounting(site):
    """Dropping gAMA saves exactly 16 bytes per static image."""
    with_gamma = convert_site_to_png(site, include_gamma=True)
    without = convert_site_to_png(site, include_gamma=False)
    delta = with_gamma.static_png_total - without.static_png_total
    assert delta == 16 * len(with_gamma.static)


def test_conversion_covers_all_images(site, png_report):
    assert len(png_report.static) == 40
    assert len(png_report.animations) == 2


# ----------------------------------------------------------------------
# CSS replacement
# ----------------------------------------------------------------------
def test_replaceable_images_are_replaced(css_report):
    """Banners, bullets, spacers, rules and symbol icons go away."""
    replaced_roles = {r.role for r in css_report.replaced}
    assert ImageRole.TEXT_BANNER in replaced_roles
    assert ImageRole.SPACER in replaced_roles
    kept_roles = {o.role for o in css_report.kept}
    assert ImageRole.PHOTO in kept_roles
    assert ImageRole.ANIMATION in kept_roles


def test_requests_saved_is_substantial(css_report):
    """Most of the 42 images are small decoration: >= half replaceable."""
    assert 20 <= css_report.requests_saved <= 35


def test_css_replacement_saves_bytes(css_report):
    assert css_report.net_bytes_saved > 0
    # Markup added is tiny compared to the images removed.
    assert css_report.markup_bytes_added < (
        css_report.image_bytes_removed / 5)


def test_each_replacement_smaller_than_its_image_group(css_report):
    """Replacements beat their GIFs except bottom-end spacers/bullets,
    whose shared CSS rule amortizes across many uses."""
    total_replacement = css_report.markup_bytes_added
    assert total_replacement < css_report.image_bytes_removed


# ----------------------------------------------------------------------
# Combined transform
# ----------------------------------------------------------------------
def test_apply_all_transforms_rewrites_page(site):
    page = apply_all_transforms(site)
    html = page.html.decode("latin-1")
    assert "<style>" in html
    remaining = find_image_urls(html)
    # Replaced images are gone; survivors now point at .png/.mng.
    assert len(remaining) == len(page.objects)
    assert all(url.endswith((".png", ".mng")) for url in remaining)
    for url in remaining:
        assert url in page.objects


def test_transformed_payload_smaller(site):
    page = apply_all_transforms(site)
    before = site.html.size + site.total_image_bytes
    assert page.total_payload < before
    assert page.request_count < 43


def test_transformed_pngs_decode(site):
    page = apply_all_transforms(site)
    for url, body in page.objects.items():
        if url.endswith(".png"):
            assert decode_png(body).width > 0
