"""Unit and property tests for the GIF, PNG and MNG codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.content.gif import (GifError, decode_animated_gif, decode_gif,
                               encode_animated_gif, encode_gif, lzw_decode,
                               lzw_encode)
from repro.content.images import (IndexedImage, animation_frames, banner,
                                  bullet, icon, photo_like, spacer)
from repro.content.mng import MngError, decode_mng, encode_mng
from repro.content.png import PngError, decode_png, encode_png


# ----------------------------------------------------------------------
# IndexedImage
# ----------------------------------------------------------------------
def test_image_validation():
    with pytest.raises(ValueError):
        IndexedImage(2, 2, [(0, 0, 0)], b"\x00" * 3)  # wrong pixel count
    with pytest.raises(ValueError):
        IndexedImage(1, 1, [(0, 0, 0)], b"\x05")      # index out of range
    with pytest.raises(ValueError):
        IndexedImage(0, 1, [(0, 0, 0)], b"")          # zero dimension


def test_bit_depth():
    assert spacer().bit_depth == 1
    assert bullet().bit_depth == 1
    assert icon(colors=8).bit_depth == 4 or icon(colors=8).bit_depth == 8
    assert photo_like(4, 4, colors=128).bit_depth == 8


def test_generators_are_deterministic():
    a = photo_like(20, 20, seed=7)
    b = photo_like(20, 20, seed=7)
    assert a.pixels == b.pixels
    assert banner("solutions").pixels == banner("solutions").pixels


def test_rows():
    image = IndexedImage(2, 2, [(0, 0, 0), (1, 1, 1)], b"\x00\x01\x01\x00")
    assert image.rows() == [b"\x00\x01", b"\x01\x00"]


# ----------------------------------------------------------------------
# GIF LZW
# ----------------------------------------------------------------------
def test_lzw_roundtrip_simple():
    data = b"\x00\x01\x00\x01\x02" * 10
    assert lzw_decode(lzw_encode(data, 2), 2) == data


def test_lzw_roundtrip_exercises_width_growth():
    """Enough distinct contexts to push the code width past 9 bits."""
    data = photo_like(80, 80, colors=256, seed=3, noise=0.9).pixels
    assert lzw_decode(lzw_encode(data, 8), 8) == data


def test_lzw_roundtrip_exercises_dictionary_reset():
    """>4096 dictionary entries force a CLEAR-code reset mid-stream."""
    data = photo_like(150, 150, colors=256, seed=4, noise=1.0).pixels
    assert len(data) > 20000
    assert lzw_decode(lzw_encode(data, 8), 8) == data


@settings(max_examples=50)
@given(st.binary(min_size=0, max_size=3000).map(
    lambda b: bytes(x & 0x0F for x in b)))
def test_lzw_roundtrip_property(data):
    assert lzw_decode(lzw_encode(data, 4), 4) == data


# ----------------------------------------------------------------------
# GIF container
# ----------------------------------------------------------------------
@pytest.mark.parametrize("image", [
    spacer(1, 1),
    spacer(10, 3),
    bullet(8),
    banner("solutions"),
    icon(16, colors=8, seed=2),
    photo_like(33, 21, colors=100, seed=5, noise=0.4),
], ids=["spacer1x1", "spacer10x3", "bullet", "banner", "icon", "photo"])
def test_gif_roundtrip(image):
    decoded = decode_gif(encode_gif(image))
    assert decoded.width == image.width
    assert decoded.height == image.height
    assert decoded.pixels == image.pixels
    assert decoded.palette[:len(image.palette)] == image.palette
    assert decoded.transparent == image.transparent


def test_gif_version_selection():
    assert encode_gif(spacer()).startswith(b"GIF89a")   # transparency
    assert encode_gif(icon()).startswith(b"GIF87a")


def test_tiny_gif_is_tiny():
    """1997 spacer/bullet GIFs were well under 200 bytes."""
    assert len(encode_gif(spacer())) < 60
    assert len(encode_gif(bullet())) < 120


def test_animated_gif_roundtrip():
    frames = animation_frames(40, 30, frames=5, seed=9)
    wire = encode_animated_gif(frames, delay_cs=12)
    assert wire.startswith(b"GIF89a")
    assert b"NETSCAPE2.0" in wire
    decoded = decode_animated_gif(wire)
    assert len(decoded) == 5
    for original, roundtrip in zip(frames, decoded):
        assert roundtrip.pixels == original.pixels


def test_gif_decoder_rejects_garbage():
    with pytest.raises(GifError):
        decode_gif(b"NOTAGIF" + b"\x00" * 20)


def test_gif_decoder_rejects_truncated():
    wire = encode_gif(bullet())
    with pytest.raises((GifError, ValueError, IndexError, Exception)):
        decode_gif(wire[:15])


# ----------------------------------------------------------------------
# PNG
# ----------------------------------------------------------------------
@pytest.mark.parametrize("image", [
    spacer(1, 1),
    bullet(8),
    banner("solutions"),
    icon(16, colors=8, seed=2),
    photo_like(33, 21, colors=100, seed=5, noise=0.4),
    photo_like(40, 40, colors=256, seed=6, noise=0.9),
], ids=["spacer", "bullet", "banner", "icon", "photo", "noisy"])
def test_png_roundtrip(image):
    decoded = decode_png(encode_png(image))
    assert decoded.width == image.width
    assert decoded.height == image.height
    assert decoded.pixels == image.pixels
    assert decoded.palette[:len(image.palette)] == image.palette
    assert decoded.transparent == image.transparent


def test_png_gamma_chunk_costs_16_bytes():
    """The paper: gamma information 'adds 16 bytes per image'."""
    image = icon(16, seed=1)
    with_gamma = encode_png(image, include_gamma=True)
    without = encode_png(image, include_gamma=False)
    assert len(with_gamma) - len(without) == 16
    assert b"gAMA" in with_gamma
    assert b"gAMA" not in without


def test_png_fixed_overhead_hurts_tiny_images():
    """Sub-200-byte GIFs grow when converted to PNG (paper §GIF→PNG)."""
    tiny = bullet(8)
    assert len(encode_png(tiny)) > len(encode_gif(tiny))


def test_png_beats_gif_on_larger_images():
    """Deflate outperforms LZW on bigger images, shrinking the total."""
    big = photo_like(120, 90, colors=128, seed=11, noise=0.35)
    assert len(encode_png(big)) < len(encode_gif(big))


def test_png_rejects_bad_signature():
    with pytest.raises(PngError):
        decode_png(b"JPEG" * 10)


def test_png_rejects_corrupt_crc():
    wire = bytearray(encode_png(bullet()))
    wire[-5] ^= 0xFF   # flip a bit inside IEND's CRC
    with pytest.raises(PngError):
        decode_png(bytes(wire))


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 12), st.integers(1, 12), st.integers(2, 16),
       st.randoms(use_true_random=False))
def test_png_roundtrip_property(width, height, colors, rng):
    palette = [(rng.randrange(256), rng.randrange(256), rng.randrange(256))
               for _ in range(colors)]
    pixels = bytes(rng.randrange(colors) for _ in range(width * height))
    image = IndexedImage(width, height, palette, pixels)
    assert decode_png(encode_png(image)).pixels == pixels


# ----------------------------------------------------------------------
# MNG
# ----------------------------------------------------------------------
def test_mng_roundtrip():
    frames = animation_frames(40, 30, frames=6, seed=21)
    decoded = decode_mng(encode_mng(frames))
    assert len(decoded) == 6
    for original, roundtrip in zip(frames, decoded):
        assert roundtrip.pixels == original.pixels


def test_mng_smaller_than_animated_gif():
    """The headline animation result: MNG < animated GIF."""
    frames = animation_frames(60, 40, frames=8, seed=33)
    gif_size = len(encode_animated_gif(frames))
    mng_size = len(encode_mng(frames))
    assert mng_size < gif_size


def test_mng_single_frame():
    frames = animation_frames(20, 20, frames=1, seed=2)
    assert len(decode_mng(encode_mng(frames))) == 1


def test_mng_rejects_bad_signature():
    with pytest.raises(MngError):
        decode_mng(b"\x89PNG\r\n\x1a\n" + b"\x00" * 30)


def test_mng_requires_matching_dimensions():
    with pytest.raises(ValueError):
        encode_mng([spacer(2, 2), spacer(3, 3)])


def test_mng_empty_animation_rejected():
    with pytest.raises(ValueError):
        encode_mng([])
