"""Unit tests for the CSS1 subset and image replacement."""

import pytest

from repro.content import (CssError, Declaration, ImageRole,
                           REPLACEABLE_ROLES, Rule, Stylesheet,
                           banner_replacement, parse_css, replacement_for,
                           shared_rule_bytes)


def test_parse_simple_rule():
    sheet = parse_css("p.banner { color: white; background: #FC0 }")
    assert len(sheet.rules) == 1
    rule = sheet.rules[0]
    assert rule.selectors == ["p.banner"]
    assert rule.get("color") == "white"
    assert rule.get("background") == "#FC0"


def test_parse_multiple_selectors_and_rules():
    sheet = parse_css("h1, h2 { font-weight: bold }\n em { color: red }")
    assert sheet.rules[0].selectors == ["h1", "h2"]
    assert len(sheet.rules) == 2
    assert sheet.rules_for("h2")[0].get("font-weight") == "bold"


def test_parse_strips_comments():
    sheet = parse_css("/* note */ p { /* inner */ color: blue }")
    assert sheet.rules[0].get("color") == "blue"


def test_parse_cascade_order():
    sheet = parse_css("p { color: red; color: green }")
    assert sheet.rules[0].get("color") == "green"


def test_parse_errors():
    with pytest.raises(CssError):
        parse_css("p { color red }")        # missing colon
    with pytest.raises(CssError):
        parse_css("p { color: red ")        # unterminated block
    with pytest.raises(CssError):
        parse_css("{ color: red }")         # no selector
    with pytest.raises(CssError):
        parse_css("/* unterminated")
    with pytest.raises(CssError):
        parse_css("p { a: b } junk")


def test_serialize_roundtrip():
    source = "p.banner{color:white;font:bold 20px sans-serif}"
    sheet = parse_css(source)
    assert sheet.serialize(compact=True) == source
    # Pretty form reparses to the same object model.
    assert parse_css(sheet.serialize()).serialize(compact=True) == source


def test_stylesheet_byte_size():
    sheet = Stylesheet([Rule(["p"], [Declaration("color", "red")])])
    assert sheet.byte_size == len("p{color:red}")


def test_figure1_banner_replacement_size():
    """Figure 1: 682-byte GIF vs ~150 bytes of HTML+CSS (>4x smaller)."""
    replacement = banner_replacement("solutions")
    assert replacement.byte_size <= 180
    assert 682 / replacement.byte_size > 4.0
    assert "solutions" in replacement.html
    assert replacement.css.get("font") == "bold oblique 20px sans-serif"


def test_replaceable_roles_have_replacements():
    for role in REPLACEABLE_ROLES:
        replacement = replacement_for(role, text="go")
        assert replacement is not None
        assert replacement.byte_size < 250


def test_non_replaceable_roles_return_none():
    for role in (ImageRole.LOGO, ImageRole.PHOTO, ImageRole.ANIMATION):
        assert replacement_for(role) is None


def test_shared_rule_bytes_deduplicates():
    a = replacement_for(ImageRole.BULLET)
    b = replacement_for(ImageRole.BULLET)
    c = replacement_for(ImageRole.SPACER)
    shared = shared_rule_bytes([a, b, c])
    individual = (len(a.css.serialize(compact=True))
                  + len(c.css.serialize(compact=True)))
    assert shared == individual
