"""Artifact store: keys, memoization, persistence, byte-identity."""

import pickle

import pytest

from repro.content import artifacts
from repro.content.artifacts import (ENCODER_VERSION, ArtifactStore,
                                     artifact_key)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture
def default_store(tmp_path):
    """Swap the process-default store for a throwaway one."""
    previous = artifacts.get_store()
    fresh = ArtifactStore(tmp_path / "default-artifacts")
    artifacts.set_store(fresh)
    yield fresh
    artifacts.set_store(previous)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_key_is_stable_across_param_ordering():
    a = artifact_key("gif.icon", {"colors": 8, "speckle": 2}, 0)
    b = artifact_key("gif.icon", {"speckle": 2, "colors": 8}, 0)
    assert a == b
    assert len(a) == 64 and int(a, 16) >= 0


def test_key_is_sensitive_to_every_component():
    base = artifact_key("gif.icon", {"colors": 8}, 0)
    assert artifact_key("gif.photo", {"colors": 8}, 0) != base
    assert artifact_key("gif.icon", {"colors": 9}, 0) != base
    assert artifact_key("gif.icon", {"colors": 8}, 1) != base


def test_version_bump_changes_every_key(monkeypatch):
    before = artifact_key("gif.icon", {"colors": 8}, 0)
    monkeypatch.setattr(artifacts, "ENCODER_VERSION", ENCODER_VERSION + 1)
    assert artifact_key("gif.icon", {"colors": 8}, 0) != before


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------
def test_memoize_calls_producer_once(store):
    calls = []

    def produce():
        calls.append(1)
        return b"payload"

    assert store.memoize("b", {"x": 1}, 0, produce) == b"payload"
    assert store.memoize("b", {"x": 1}, 0, produce) == b"payload"
    assert len(calls) == 1
    assert store.stats.misses == 1
    assert store.stats.hits == 1
    assert store.stats.memory_hits == 1


def test_disk_round_trip_survives_new_store(tmp_path):
    root = tmp_path / "artifacts"
    ArtifactStore(root).memoize("b", {}, 0, lambda: b"persisted")
    reopened = ArtifactStore(root)
    blob = reopened.memoize("b", {}, 0, lambda: b"WRONG")
    assert blob == b"persisted"
    assert reopened.stats.disk_hits == 1
    assert reopened.stats.bytes_read == len(b"persisted")


def test_disabled_store_is_pure_pass_through(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts", enabled=False)
    calls = []
    for _ in range(2):
        store.memoize("b", {}, 0, lambda: calls.append(1) or b"x")
    assert len(calls) == 2
    assert len(store) == 0
    assert not (tmp_path / "artifacts").exists()


def test_memory_only_store_persists_nothing():
    store = ArtifactStore(None)
    store.memoize("b", {}, 0, lambda: b"x")
    assert store.path("00" * 32) is None
    assert len(store) == 1                 # memory layer only
    assert store.memoize("b", {}, 0, lambda: b"WRONG") == b"x"


def test_lru_bound_is_respected(tmp_path):
    store = ArtifactStore(None, max_memory_entries=2)
    for i in range(5):
        store.memoize("b", {"i": i}, 0, lambda i=i: bytes([i]))
    assert len(store) == 2


def test_memoize_object_round_trips_and_heals_corruption(store):
    value = {"nested": [1, 2.5, "three"], "tuple": (4, 5)}
    first = store.memoize_object("obj", {}, 0, lambda: value)
    assert first == value
    # Corrupt the blob on disk and drop the memory layer: the bad
    # pickle must count as a miss and be overwritten, not raised.
    key = artifact_key("obj", {}, 0)
    store._memory.clear()
    store.path(key).write_bytes(b"not a pickle")
    healed = store.memoize_object("obj", {}, 0, lambda: value)
    assert healed == value
    assert pickle.loads(store.path(key).read_bytes()) == value


def test_clear_removes_blobs(store):
    for i in range(3):
        store.memoize("b", {"i": i}, 0, lambda: b"x")
    assert len(store) == 3
    assert store.clear() == 3
    assert len(store) == 0


# ----------------------------------------------------------------------
# Concurrent access / atomicity (two runners sharing one directory)
# ----------------------------------------------------------------------
def test_two_stores_share_one_directory(tmp_path):
    root = tmp_path / "shared"
    a, b = ArtifactStore(root), ArtifactStore(root)
    a.memoize("b", {}, 0, lambda: b"from-a")
    assert b.memoize("b", {}, 0, lambda: b"WRONG") == b"from-a"
    assert b.stats.disk_hits == 1


def test_racing_writers_leave_no_temp_debris(tmp_path):
    """Interleaved put() on one key: last write wins, blob stays whole,
    and every uniquely named temp file is consumed by os.replace."""
    root = tmp_path / "shared"
    a, b = ArtifactStore(root), ArtifactStore(root)
    key = artifact_key("b", {}, 0)
    for _ in range(10):
        a.put(key, b"identical-content")
        b.put(key, b"identical-content")
    assert a.path(key).read_bytes() == b"identical-content"
    leftovers = [p for p in root.rglob("*") if p.is_file()
                 and not p.name.endswith(".blob")]
    assert leftovers == []


def test_concurrent_memoize_threads_agree(tmp_path):
    import threading
    store = ArtifactStore(tmp_path / "shared")
    results = []

    def worker(i):
        blob = store.memoize("b", {}, 0, lambda: b"canonical")
        results.append(blob)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results == [b"canonical"] * 8
    assert len(store) == 1


# ----------------------------------------------------------------------
# Default-store plumbing
# ----------------------------------------------------------------------
def test_configure_toggles_enabled(default_store):
    assert artifacts.configure(enabled=False) is default_store
    assert default_store.enabled is False
    artifacts.configure(enabled=True)
    assert default_store.enabled is True


def test_configure_new_root_builds_new_store(default_store, tmp_path):
    moved = artifacts.configure(root=tmp_path / "elsewhere")
    assert moved is not default_store
    assert moved.root == tmp_path / "elsewhere"


def test_store_state_round_trips_through_configure(default_store):
    state = artifacts.store_state()
    assert state == {"enabled": True,
                     "root": str(default_store.root)}
    # What a pool worker does with the parent's snapshot:
    worker_store = artifacts.configure(**state)
    assert worker_store.enabled and worker_store.root == default_store.root


def test_env_flag_disables_lazy_default(monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")
    previous = artifacts.get_store()
    artifacts.set_store(None)
    try:
        assert artifacts.get_store().enabled is False
    finally:
        artifacts.set_store(previous)


# ----------------------------------------------------------------------
# Byte-identity: the property the whole design rests on
# ----------------------------------------------------------------------
def test_site_build_is_byte_identical_warm_and_disabled(tmp_path):
    from repro.content import build_microscape_site

    def site_signature():
        build_microscape_site.cache_clear()
        site = build_microscape_site()
        return ([(obj.url, obj.body) for obj in site.image_objects],
                site.html.body)

    previous = artifacts.get_store()
    try:
        artifacts.set_store(ArtifactStore(tmp_path / "artifacts"))
        cold = site_signature()
        artifacts.set_store(ArtifactStore(tmp_path / "artifacts"))
        warm = site_signature()
        assert artifacts.get_store().stats.disk_hits > 0
        artifacts.set_store(ArtifactStore(None, enabled=False))
        uncached = site_signature()
    finally:
        artifacts.set_store(previous)
        build_microscape_site.cache_clear()
    assert cold == warm == uncached


def test_deflate_precompression_is_memoized(default_store):
    from repro.server.static import Resource
    body = b"<html>" + b"x" * 4096 + b"</html>"
    first = Resource.create("/page.html", "text/html", body)
    misses = default_store.stats.misses
    second = Resource.create("/page.html", "text/html", body)
    assert first.deflate_body == second.deflate_body
    assert first.deflate_body is not None
    assert default_store.stats.misses == misses   # second hit the memo
