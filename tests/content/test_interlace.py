"""Tests for progressive (interlaced) image encodings.

The paper's range-request discussion assumes progressive formats: the
browser fetches "enough of each object to allow for progressive display
of image data types (e.g. progressive PNG, GIF or JPEG images)".
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.content import (IndexedImage, bullet, decode_gif, decode_png,
                           encode_gif, encode_png, icon, photo_like)
from repro.content.gif import _interlace_row_order
from repro.content.png import ADAM7_PASSES


# ----------------------------------------------------------------------
# PNG Adam7
# ----------------------------------------------------------------------
@pytest.mark.parametrize("image", [
    bullet(8),
    icon(16, colors=8, seed=4),
    photo_like(33, 21, colors=100, seed=5, noise=0.4),
    photo_like(7, 5, colors=4, seed=6),       # smaller than one pass
    photo_like(1, 1, colors=2, seed=7),
], ids=["bullet", "icon", "photo", "tiny", "onepixel"])
def test_adam7_roundtrip(image):
    wire = encode_png(image, interlace=True)
    decoded = decode_png(wire)
    assert decoded.pixels == image.pixels
    assert decoded.width == image.width


def test_adam7_flag_in_ihdr():
    progressive = encode_png(icon(16, seed=1), interlace=True)
    baseline = encode_png(icon(16, seed=1), interlace=False)
    # IHDR interlace byte is the 13th data byte of the first chunk.
    assert progressive[8 + 8 + 12] == 1
    assert baseline[8 + 8 + 12] == 0


def test_adam7_passes_cover_every_pixel_once():
    seen = set()
    width, height = 16, 16
    for x0, y0, dx, dy in ADAM7_PASSES:
        for y in range(y0, height, dy):
            for x in range(x0, width, dx):
                assert (x, y) not in seen
                seen.add((x, y))
    assert len(seen) == width * height


def test_first_pass_spans_whole_image():
    """Pass 1 samples every 8th pixel — a full-area preview from ~1/64
    of the data, which is the progressive-rendering point."""
    x0, y0, dx, dy = ADAM7_PASSES[0]
    assert (x0, y0) == (0, 0)
    assert dx == dy == 8


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 20), st.integers(1, 20), st.integers(2, 8),
       st.randoms(use_true_random=False))
def test_adam7_roundtrip_property(width, height, colors, rng):
    palette = [(rng.randrange(256),) * 3 for _ in range(colors)]
    pixels = bytes(rng.randrange(colors) for _ in range(width * height))
    image = IndexedImage(width, height, list(palette), pixels)
    assert decode_png(encode_png(image, interlace=True)).pixels == pixels


# ----------------------------------------------------------------------
# GIF four-pass interlace
# ----------------------------------------------------------------------
@pytest.mark.parametrize("image", [
    icon(16, colors=8, seed=4),
    photo_like(31, 17, colors=64, seed=9, noise=0.3),
    photo_like(5, 3, colors=4, seed=2),
], ids=["icon", "photo", "tiny"])
def test_gif_interlace_roundtrip(image):
    wire = encode_gif(image, interlace=True)
    decoded = decode_gif(wire)
    assert decoded.pixels == image.pixels


def test_gif_interlace_row_order_is_a_permutation():
    for height in (1, 2, 7, 8, 9, 64):
        order = _interlace_row_order(height)
        assert sorted(order) == list(range(height))


def test_gif_interlace_first_pass_rows():
    order = _interlace_row_order(16)
    assert order[:2] == [0, 8]       # pass 1: every 8th row


def test_interlaced_size_is_comparable():
    """Interlacing shuffles rows; the size cost should be small."""
    image = photo_like(60, 40, colors=64, seed=3, noise=0.3)
    plain_gif = len(encode_gif(image))
    inter_gif = len(encode_gif(image, interlace=True))
    assert abs(inter_gif - plain_gif) < plain_gif * 0.25
    plain_png = len(encode_png(image))
    inter_png = len(encode_png(image, interlace=True))
    assert abs(inter_png - plain_png) < plain_png * 0.35
