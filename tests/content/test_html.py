"""Unit tests for HTML generation and scanning."""

import zlib

import pytest

from repro.content import (change_tag_case, distinct_image_urls,
                           filler_paragraphs, find_image_urls, nav_table)


def test_find_image_urls_variants():
    html = ('<img src="/a.gif"> <IMG SRC=\'/b.gif\' border=0>'
            '<img width="3" src=/c.gif>')
    assert find_image_urls(html) == ["/a.gif", "/b.gif", "/c.gif"]


def test_find_image_urls_preserves_duplicates():
    html = '<img src="/a.gif"><img src="/a.gif">'
    assert find_image_urls(html) == ["/a.gif", "/a.gif"]
    assert distinct_image_urls(html) == ["/a.gif"]


def test_find_image_urls_ignores_other_tags():
    assert find_image_urls('<a href="/x.gif">link</a>') == []


def test_change_tag_case_upper():
    html = '<p class="a">text with p inside</p>'
    out = change_tag_case(html, "upper")
    assert out.startswith("<P ")
    assert out.endswith("</P>")
    assert 'class="a"' in out           # attributes untouched
    assert "text with p inside" in out  # text untouched


def test_change_tag_case_lower_roundtrip():
    html = "<DIV><B>x</B></DIV>"
    assert change_tag_case(html, "lower") == "<div><b>x</b></div>"


def test_change_tag_case_mixed_is_deterministic():
    html = "<p>a</p><p>b</p><p>c</p>" * 10
    assert (change_tag_case(html, "mixed", seed=1)
            == change_tag_case(html, "mixed", seed=1))


def test_change_tag_case_rejects_unknown_mode():
    with pytest.raises(ValueError):
        change_tag_case("<p>x</p>", "random")


def test_mixed_case_compresses_worse_than_lowercase():
    """The paper: .35 (mixed) vs .27 (lowercase) deflate ratio."""
    body = "<html><body>" + filler_paragraphs(120, 50, seed=3) + "</body>"
    lower = change_tag_case(body, "lower").encode("latin-1")
    mixed = change_tag_case(body, "mixed").encode("latin-1")
    ratio_lower = len(zlib.compress(lower)) / len(lower)
    ratio_mixed = len(zlib.compress(mixed)) / len(mixed)
    assert ratio_mixed > ratio_lower


def test_filler_is_deterministic():
    assert filler_paragraphs(5, 30, seed=9) == filler_paragraphs(5, 30,
                                                                 seed=9)
    assert filler_paragraphs(5, 30, seed=9) != filler_paragraphs(5, 30,
                                                                 seed=10)


def test_nav_table_contains_links():
    table = nav_table(["/products", "/support"])
    assert table.count("<td") == 2
    assert 'href="/products"' in table
    assert table.startswith("<table")
