"""Tests for the synthetic Microscape site against the paper's numbers."""

import zlib

import pytest

from repro.content import (HTML_URL, ImageRole, build_microscape_site,
                           decode_gif, decode_animated_gif,
                           find_image_urls)


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


def test_site_is_cached_and_deterministic(site):
    assert build_microscape_site() is site
    again = build_microscape_site.__wrapped__()
    assert again.html.body == site.html.body
    assert [o.size for o in again.image_objects] == [
        o.size for o in site.image_objects]


def test_page_has_42_embedded_images(site):
    assert len(site.embedded_urls()) == 42
    assert len(site.all_urls()) == 43
    assert site.all_urls()[0] == HTML_URL


def test_html_is_about_42kb(site):
    """Paper: 'typical HTML totaling 42KB'."""
    assert 40_000 <= site.html.size <= 48_000


def test_images_total_about_125kb(site):
    """Paper: '42 inlined GIF images totaling 125KB'."""
    assert 110_000 <= site.total_image_bytes <= 135_000


def test_static_gif_total_near_paper(site):
    """Paper: 'The 40 static GIF images ... totaled 103,299 bytes'."""
    total = sum(o.size for o in site.static_images)
    assert len(site.static_images) == 40
    assert abs(total - 103_299) / 103_299 < 0.10


def test_animation_total_near_paper(site):
    """Paper: 'The two GIF animations totaled 24,988 bytes'."""
    total = sum(o.size for o in site.animations)
    assert len(site.animations) == 2
    assert abs(total - 24_988) / 24_988 < 0.10


def test_size_histogram_matches_paper(site):
    """Paper: 19 images < 1KB, 7 in 1-2KB, 6 in 2-3KB."""
    sizes = [o.size for o in site.static_images]
    assert sum(1 for s in sizes if s < 1024) == 19
    assert sum(1 for s in sizes if 1024 <= s < 2048) == 7
    assert sum(1 for s in sizes if 2048 <= s < 3072) == 6


def test_size_extremes(site):
    """Paper: images 'range in size from 70B to 40KB'."""
    sizes = [o.size for o in site.image_objects]
    assert min(sizes) < 120
    assert 30_000 < max(sizes) < 42_000


def test_over_half_the_bytes_in_hero_and_animations(site):
    """Paper: 'Over half of the data was contained in a single image
    and two animations.'"""
    hero = max(site.static_images, key=lambda o: o.size)
    top = hero.size + sum(o.size for o in site.animations)
    assert top > 0.45 * site.total_image_bytes


def test_all_bodies_are_valid_gifs(site):
    for obj in site.static_images:
        decoded = decode_gif(obj.body)
        assert decoded.width > 0
    for obj in site.animations:
        frames = decode_animated_gif(obj.body)
        assert len(frames) >= 2


def test_html_references_every_object_once(site):
    html = site.html.body.decode("latin-1")
    urls = find_image_urls(html)
    assert len(urls) == len(set(urls)) == 42
    for url in urls:
        assert url in site.objects


def test_html_compresses_like_the_paper(site):
    """Paper: 42K -> 11K, 'a typical factor of gain' (~3x, ratio ~0.27)."""
    ratio = len(zlib.compress(site.html.body)) / site.html.size
    assert 0.20 <= ratio <= 0.35


def test_roles_assigned(site):
    roles = {o.role for o in site.image_objects}
    assert ImageRole.TEXT_BANNER in roles
    assert ImageRole.SPACER in roles
    assert ImageRole.ANIMATION in roles
    assert all(o.role is not None for o in site.image_objects)


def test_banner_objects_carry_text(site):
    banners = [o for o in site.image_objects
               if o.role == ImageRole.TEXT_BANNER]
    assert banners
    assert all(o.text for o in banners)


def test_image_pixels_stored_for_conversion(site):
    for obj in site.image_objects:
        if obj.role == ImageRole.ANIMATION:
            assert obj.frames is not None
        else:
            assert obj.image is not None
