"""FaultyProfile: wrapping, and the scripted server faults end to end."""

import dataclasses

from repro.core import run_experiment
from repro.faults import FAULT_PLANS, FaultyProfile, ServerFaultConfig
from repro.server.profiles import APACHE, JIGSAW, ServerProfile


def test_wrap_clones_every_base_field():
    faults = ServerFaultConfig(error_503_requests=(2,))
    wrapped = FaultyProfile.wrap(APACHE, faults)
    assert isinstance(wrapped, ServerProfile)
    assert wrapped.faults is faults
    assert wrapped.name == "Apache+faults"
    for field in dataclasses.fields(ServerProfile):
        if field.name == "name":
            continue
        assert getattr(wrapped, field.name) == getattr(APACHE, field.name)


def test_wrap_close_after_one_caps_connection_reuse():
    wrapped = FaultyProfile.wrap(
        JIGSAW, ServerFaultConfig(close_after_one=True))
    assert wrapped.max_requests_per_connection == 1


def test_plain_profiles_expose_no_faults():
    assert getattr(APACHE, "faults", None) is None


def test_flaky_server_faults_hit_and_are_recovered():
    """The flaky-server plan's scripted ordinals fire exactly once each,
    the robot retries, and the full site still arrives intact.  (The
    client need not parse every 503: bytes queued behind a mid-pipeline
    abort die with the connection and their requests are simply
    requeued — so only the server-side counts are exact.)"""
    plan = FAULT_PLANS["flaky-server"]
    result = run_experiment("pipelined", "first-time", environment="WAN",
                            profile="Apache", seed=0,
                            faults="flaky-server")
    assert len(result.fetch.responses) == 43
    assert all(r.status in (200, 304)
               for r in result.fetch.responses.values())
    recovery = result.trace.recovery
    assert recovery.count("server", "503") == \
        len(plan.server.error_503_requests)
    assert recovery.count("server", "abort") == \
        len(plan.server.abort_requests)
    assert recovery.count("client", "retry") >= \
        len(plan.server.abort_requests)
    assert result.retries >= len(plan.server.abort_requests)


def test_hostile_server_forces_watchdog_and_downgrade():
    result = run_experiment("pipelined", "first-time", environment="WAN",
                            profile="Apache", seed=0,
                            faults="hostile-server")
    assert len(result.fetch.responses) == 43
    recovery = result.trace.recovery
    assert recovery.count("server", "stall") == 1
    assert recovery.count("client", "watchdog") >= 1
    assert recovery.count("client", "downgrade") >= 1
    # The stall dominates the fetch time but the run still finishes.
    assert result.elapsed > FAULT_PLANS["hostile-server"] \
        .server.stall_seconds
