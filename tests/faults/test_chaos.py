"""The chaos verb: grid shape, per-cell seeds, single-cell runs."""

import io

import pytest

from repro.__main__ import main
from repro.faults.chaos import _cell_seed, chaos_cells, run_chaos


def test_grid_is_plans_by_modes_by_envs():
    cells = chaos_cells()
    assert len(cells) == 4 * 6 * 2
    assert len(set(cells)) == len(cells)
    assert cells[0][0] == "bursty-loss"
    assert all(env in ("WAN", "PPP") for _, _, env in cells)


def test_cell_seeds_are_stable_and_distinct():
    seeds = {_cell_seed(1997, *cell) for cell in chaos_cells()}
    assert len(seeds) == len(chaos_cells())
    assert _cell_seed(1997, "bursty-loss", "pipelined", "WAN") == \
        _cell_seed(1997, "bursty-loss", "pipelined", "WAN")
    assert _cell_seed(1, "a", "b", "c") != _cell_seed(2, "a", "b", "c")


def test_single_cell_run_reports_recovery(capsys):
    out = io.StringIO()
    code = run_chaos(seed=1997, only="flaky-server:pipelined:WAN",
                     out=out)
    text = out.getvalue()
    assert code == 0
    assert "flaky-server" in text
    assert "server.503=" in text
    assert "all 1 cells recovered every resource byte-identical" in text


def test_only_wants_three_fields(capsys):
    assert run_chaos(only="flaky-server") == 2
    assert "PLAN:MODE:ENV" in capsys.readouterr().err


def test_only_unknown_cell_is_usage_error(capsys):
    assert run_chaos(only="no-such-plan:pipelined:WAN") == 2
    assert "no chaos cell matches" in capsys.readouterr().err


def test_chaos_cli_verb_runs_one_cell(capsys):
    code = main(["chaos", "--seed", "1997",
                 "--only", "bursty-loss:pipelined:WAN"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bursty-loss" in out


@pytest.mark.slow
def test_full_grid_recovers_everywhere():
    out = io.StringIO()
    assert run_chaos(seed=1997, out=out) == 0
    assert "all 48 cells recovered" in out.getvalue()
