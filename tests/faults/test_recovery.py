"""RecoveryLog: counts, bounded event list, summaries."""

from repro.faults.recovery import MAX_EVENTS, RecoveryEvent, RecoveryLog


def test_note_records_event_and_count():
    log = RecoveryLog()
    log.note(1.5, "link", "loss", "segment 3")
    assert log.count("link", "loss") == 1
    assert log.total == 1
    assert len(log) == 1
    assert log.events == [RecoveryEvent(1.5, "link", "loss", "segment 3")]


def test_summary_is_sorted_and_clean_when_empty():
    log = RecoveryLog()
    assert log.summary() == "clean"
    log.note(0.0, "server", "503")
    log.note(0.1, "client", "retry")
    log.note(0.2, "client", "retry")
    assert log.summary() == "client.retry=2 server.503=1"


def test_event_list_is_bounded_but_counts_stay_exact():
    log = RecoveryLog()
    for n in range(MAX_EVENTS + 50):
        log.note(float(n), "link", "loss")
    assert len(log.events) == MAX_EVENTS
    assert log.truncated
    assert log.total == MAX_EVENTS + 50
    assert log.count("link", "loss") == MAX_EVENTS + 50


def test_count_of_unseen_kind_is_zero():
    assert RecoveryLog().count("client", "watchdog") == 0
