"""FaultInjector: unit behaviour on a bare link, plus end-to-end runs."""

import zlib

import pytest

from repro.core import run_experiment
from repro.faults import FaultInjector, LinkFaultConfig, RecoveryLog
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import Segment


def make_link():
    """A 1 Mbit/s, 10 ms link with a delivery-collecting receiver."""
    sim = Simulator()
    link = Link(sim, 1_000_000.0, 0.010)
    delivered = []
    link.attach("b", delivered.append)
    link.attach("a", lambda seg: None)
    return sim, link, delivered


def segment(payload=b"x" * 100, seq=1):
    return Segment("a", 1000, "b", 80, seq=seq, ack=1, payload=payload,
                   flag_ack=True)


def test_certain_loss_drops_and_counts():
    sim, link, delivered = make_link()
    recovery = RecoveryLog()
    injector = FaultInjector(link, LinkFaultConfig(loss_good=1.0),
                             seed=1, recovery=recovery)
    assert link.fault_injector is injector
    link.transmit(segment())
    sim.run()
    assert delivered == []
    assert injector.injected_loss == 1
    assert link.dropped_loss == 1
    assert link.segments_dropped == 1
    assert recovery.count("link", "loss") == 1


def test_corruption_flips_one_byte_and_stamps_original_crc():
    sim, link, delivered = make_link()
    original = b"x" * 100
    FaultInjector(link, LinkFaultConfig(corrupt_rate=1.0), seed=2)
    link.transmit(segment(original))
    sim.run()
    (seg,) = delivered
    assert seg.payload != original
    assert sum(a != b for a, b in zip(seg.payload, original)) == 1
    assert seg.checksum == zlib.crc32(original)
    assert zlib.crc32(seg.payload) != seg.checksum


def test_control_segments_are_never_corrupted():
    sim, link, delivered = make_link()
    FaultInjector(link, LinkFaultConfig(corrupt_rate=1.0), seed=2)
    link.transmit(Segment("a", 1000, "b", 80, flag_syn=True))
    sim.run()
    (seg,) = delivered
    assert seg.checksum is None


def test_duplication_delivers_twice():
    sim, link, delivered = make_link()
    FaultInjector(link, LinkFaultConfig(duplicate_rate=1.0), seed=3)
    link.transmit(segment())
    sim.run()
    assert len(delivered) == 2
    assert delivered[0].payload == delivered[1].payload


def test_reordering_delays_within_bound():
    sim, link, delivered = make_link()
    # Baseline arrival without faults.
    link.transmit(segment())
    sim.run()
    baseline = delivered.pop().delivered_at
    FaultInjector(link, LinkFaultConfig(reorder_rate=1.0,
                                        reorder_max_delay=0.02), seed=4)
    link.transmit(segment())
    sim.run()
    (seg,) = delivered
    assert baseline < seg.delivered_at <= baseline + 0.02
    # (the second transmit starts at the first's finish time, so the
    # serialization offset cancels out of the comparison)


def test_same_seed_same_fault_schedule():
    def fates(seed):
        sim, link, delivered = make_link()
        injector = FaultInjector(
            link, LinkFaultConfig(p_good_to_bad=0.2, p_bad_to_good=0.3,
                                  loss_good=0.05, loss_bad=0.5,
                                  duplicate_rate=0.1, corrupt_rate=0.1),
            seed=seed)
        for n in range(200):
            link.transmit(segment(seq=n * 100 + 1))
        sim.run()
        return ([s.seq for s in delivered], injector.injected_loss,
                injector.injected_corrupt, injector.injected_duplicate)

    assert fates(42) == fates(42)
    assert fates(42) != fates(43)


def test_gilbert_elliott_losses_cluster():
    """With no independent loss in the good state, every loss happens
    inside a bad-state burst — drops come in runs, not singletons."""
    sim, link, delivered = make_link()
    injector = FaultInjector(
        link, LinkFaultConfig(p_good_to_bad=0.05, p_bad_to_good=0.2,
                              loss_good=0.0, loss_bad=1.0), seed=7)
    total = 2000
    for n in range(total):
        link.transmit(segment(seq=n * 100 + 1))
    sim.run()
    assert 0 < injector.injected_loss < total
    assert len(delivered) == total - injector.injected_loss
    # Mean burst length 1/p_bad_to_good = 5: far fewer distinct gaps
    # than lost segments.
    arrived = {s.seq for s in delivered}
    gaps = sum(1 for n in range(total)
               if n * 100 + 1 not in arrived
               and (n == 0 or (n - 1) * 100 + 1 in arrived))
    assert gaps < injector.injected_loss / 2


# ----------------------------------------------------------------------
# End to end: corrupted segments are repaired by TCP
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_wire_chaos_run_completes_and_counts_checksum_drops():
    result = run_experiment("pipelined", "first-time", environment="WAN",
                            profile="Apache", seed=0, faults="wire-chaos")
    assert len(result.fetch.responses) == 43
    assert result.checksum_drops > 0
    assert result.retransmissions > 0
    assert result.trace.recovery.count("link", "corrupt") > 0


@pytest.mark.slow
def test_bursty_loss_repaired_by_retransmission():
    result = run_experiment("pipelined", "first-time", environment="WAN",
                            profile="Apache", seed=0,
                            faults="bursty-loss")
    assert len(result.fetch.responses) == 43
    assert result.dropped_loss > 0
    assert result.retransmissions + result.timeouts > 0
