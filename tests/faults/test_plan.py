"""Fault plans and configs: registry, resolution, validation."""

import pytest

from repro.faults import (FAULT_PLANS, FaultPlan, LinkFaultConfig,
                          ServerFaultConfig, resolve_fault_plan)


def test_registry_contains_the_chaos_plans():
    assert set(FAULT_PLANS) == {"bursty-loss", "wire-chaos",
                                "flaky-server", "hostile-server"}
    for name, plan in FAULT_PLANS.items():
        assert plan.name == name
        assert plan.link.active or plan.server.active


def test_resolve_accepts_none_name_and_plan():
    assert resolve_fault_plan(None) is None
    plan = FAULT_PLANS["bursty-loss"]
    assert resolve_fault_plan("bursty-loss") is plan
    assert resolve_fault_plan(plan) is plan


def test_resolve_unknown_name_lists_known_plans():
    with pytest.raises(ValueError, match="bursty-loss"):
        resolve_fault_plan("packet-gremlins")


def test_default_configs_are_inactive():
    assert not LinkFaultConfig().active
    assert not ServerFaultConfig().active
    assert not FaultPlan(name="noop", description="").link.active


def test_link_config_validates_probabilities():
    with pytest.raises(ValueError, match="loss_good"):
        LinkFaultConfig(loss_good=1.5)
    with pytest.raises(ValueError, match="reorder_max_delay"):
        LinkFaultConfig(reorder_max_delay=0.0)


def test_server_config_validates_byte_and_time_bounds():
    with pytest.raises(ValueError, match="abort_after_bytes"):
        ServerFaultConfig(abort_after_bytes=-1)
    with pytest.raises(ValueError, match="stall_seconds"):
        ServerFaultConfig(stall_seconds=-0.1)


def test_each_fault_kind_activates_the_config():
    assert LinkFaultConfig(p_good_to_bad=0.1, loss_bad=0.5).active
    assert LinkFaultConfig(corrupt_rate=0.01).active
    assert ServerFaultConfig(error_503_requests=(1,)).active
    assert ServerFaultConfig(close_after_one=True).active
