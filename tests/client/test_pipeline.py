"""Unit tests for the client output buffer's flush policies."""

import pytest

from repro.client import OutputBuffer
from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork


def make_buffer(**kwargs):
    net = TwoHostNetwork(LAN)
    received = []

    def accept(conn):
        conn.on_data = lambda c, d: received.append(bytes(d))

    net.server.listen(80, accept)
    conn = net.client.connect(SERVER_HOST, 80)
    conn.set_nodelay(True)
    buffer = OutputBuffer(net.sim, conn, **kwargs)
    return net, buffer, received


def test_size_flush_at_threshold():
    net, buffer, received = make_buffer(size=1024, flush_timeout=None)
    buffer.write(b"r" * 600)
    buffer.write(b"r" * 600)      # crosses 1024
    net.run()
    assert b"".join(received) == b"r" * 1200
    assert buffer.size_flushes == 1
    assert buffer.pending == 0


def test_small_write_waits_for_timer():
    net, buffer, received = make_buffer(size=1024, flush_timeout=0.05)
    buffer.write(b"tiny request")
    net.run(until=0.01)
    assert received == []          # still buffered
    net.run()
    assert b"".join(received) == b"tiny request"
    assert buffer.timer_flushes == 1


def test_explicit_flush_beats_timer():
    net, buffer, received = make_buffer(size=1024, flush_timeout=1.0)
    buffer.write(b"request")
    buffer.flush()
    net.run(until=0.5)
    assert b"".join(received) == b"request"
    assert buffer.explicit_flushes == 1
    assert buffer.timer_flushes == 0


def test_no_timer_means_data_sits():
    net, buffer, received = make_buffer(size=1024, flush_timeout=None)
    buffer.write(b"stuck")
    net.run()
    assert received == []
    assert buffer.pending == len(b"stuck")


def test_flush_on_empty_buffer_is_noop():
    net, buffer, received = make_buffer()
    buffer.flush()
    assert buffer.explicit_flushes == 0


def test_timer_rearms_after_each_flush():
    net, buffer, received = make_buffer(size=10_000, flush_timeout=0.05)
    buffer.write(b"a")
    net.run()
    buffer.write(b"b")
    net.run()
    assert buffer.timer_flushes == 2
    assert b"".join(received) == b"ab"


def test_bytes_written_counter():
    net, buffer, _ = make_buffer()
    buffer.write(b"abc")
    buffer.write(b"defg")
    assert buffer.bytes_written == 7


def test_multiple_writes_coalesce_into_one_segment():
    """The whole point: many small requests, one TCP segment."""
    net, buffer, received = make_buffer(size=1024, flush_timeout=None)
    for index in range(5):
        buffer.write(f"GET /img{index}.gif HTTP/1.1\r\n\r\n".encode())
    buffer.flush()
    net.run()
    client_data = [r for r in net.trace.records
                   if r.payload_len and r.src != SERVER_HOST]
    assert len(client_data) == 1
