"""Unit tests for the incremental HTML image scanner."""

from repro.client import IncrementalImageScanner


def test_finds_urls_in_single_chunk():
    scanner = IncrementalImageScanner()
    found = scanner.feed(b'<p>x</p><img src="/a.gif"><img src="/b.gif">')
    assert found == ["/a.gif", "/b.gif"]


def test_tag_split_across_chunks():
    scanner = IncrementalImageScanner()
    assert scanner.feed(b'<body><img sr') == []
    assert scanner.feed(b'c="/split.gif"> more text') == ["/split.gif"]


def test_url_split_across_chunks():
    scanner = IncrementalImageScanner()
    assert scanner.feed(b'<img src="/very/long/pa') == []
    assert scanner.feed(b'th/image.gif">') == ["/very/long/path/image.gif"]


def test_duplicates_suppressed_across_chunks():
    scanner = IncrementalImageScanner()
    assert scanner.feed(b'<img src="/a.gif">') == ["/a.gif"]
    assert scanner.feed(b'<img src="/a.gif"><img src="/b.gif">') == \
        ["/b.gif"]
    assert scanner.discovered == 2


def test_byte_for_byte_feed_finds_everything():
    html = b''.join(f'<img src="/i{n}.gif">'.encode() for n in range(10))
    scanner = IncrementalImageScanner()
    found = []
    for i in range(len(html)):
        found.extend(scanner.feed(html[i:i + 1]))
    assert found == [f"/i{n}.gif" for n in range(10)]


def test_bytes_seen_counter():
    scanner = IncrementalImageScanner()
    scanner.feed(b"0123456789")
    scanner.feed(b"01234")
    assert scanner.bytes_seen == 15


def test_microscape_page_discovers_all_42():
    from repro.content import build_microscape_site
    site = build_microscape_site()
    scanner = IncrementalImageScanner()
    found = []
    body = site.html.body
    for offset in range(0, len(body), 1460):   # MSS-sized chunks
        found.extend(scanner.feed(body[offset:offset + 1460]))
    assert len(found) == 42
