"""Robot failure paths: resets, truncation, requeue order, hardening."""

import pytest

from repro.client import FIRST_TIME, ClientConfig, Robot
from repro.content import build_microscape_site
from repro.faults import FaultyProfile, ServerFaultConfig
from repro.http import HTTP11
from repro.server import APACHE, ResourceStore, SimHttpServer
from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


@pytest.fixture(scope="module")
def store(site):
    return ResourceStore.from_site(site)


def run_fetch(site, store, config, profile=APACHE, follow_images=True):
    import dataclasses
    config = dataclasses.replace(config, follow_images=follow_images)
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, profile)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80, config)
    result = robot.fetch(site.html_url, FIRST_TIME)
    net.run()
    return robot, result


def faulty(**kwargs):
    return FaultyProfile.wrap(APACHE, ServerFaultConfig(**kwargs))


# ----------------------------------------------------------------------
# Connection reset / truncation
# ----------------------------------------------------------------------
def test_reset_mid_body_is_recorded_and_recovered(site, store):
    """The server RSTs the first response mid-body; _on_reset requeues
    the unanswered request and the retry succeeds."""
    profile = faulty(abort_requests=(1,), abort_after_bytes=100)
    _, result = run_fetch(site, store,
                          ClientConfig(http_version=HTTP11), profile)
    assert result.complete
    assert len(result.responses) == 43
    assert result.retries >= 1
    assert any("connection reset" in error for error in result.errors)
    assert result.recovery.count("client", "retry") >= 1


def test_truncated_response_on_eof_records_parse_error(site, store):
    """A connection closed inside a Content-Length body is a truncated
    response: the error is recorded and the request requeued."""
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  ClientConfig(http_version=HTTP11))
    state = robot._new_conn()
    net.run()                       # let the handshake finish
    robot._started = True
    robot._html_complete = True
    robot._expected["/x.html"] = False
    state.parser.expect("GET")
    state.outstanding.append("/x.html")
    state._on_data(state.conn, b"HTTP/1.1 200 OK\r\n"
                               b"Content-Length: 100\r\n\r\nshort")
    state._on_eof(state.conn)
    assert any("truncated response" in error
               for error in robot.result.errors)
    assert not state.open
    assert robot.result.retries == 1
    assert list(robot._pending) == ["/x.html"]


def test_garbage_bytes_record_parse_error_and_abort(site, store):
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80, ClientConfig())
    state = robot._new_conn()
    net.run()
    state.parser.expect("GET")
    state.outstanding.append("/x.html")
    state._on_data(state.conn, b"GARBAGE\r\n\r\n")
    assert any("parse error" in error for error in robot.result.errors)
    assert not state.open


# ----------------------------------------------------------------------
# Mid-pipeline requeue ordering
# ----------------------------------------------------------------------
def test_requeue_preserves_pipeline_order_ahead_of_pending(site, store):
    """Unanswered pipelined requests go back to the FRONT of the pending
    queue, in their original order, ahead of never-sent URLs."""
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  ClientConfig(http_version=HTTP11, pipeline=True))
    robot._started = True
    robot._html_complete = True
    for url in ("/a", "/b", "/c", "/d"):
        robot._expected[url] = False
    state = robot._new_conn()
    state.outstanding.extend(["/a", "/b", "/c"])
    state.open = False
    robot._pending.append("/d")
    robot._connection_gone(state)
    assert list(robot._pending) == ["/a", "/b", "/c", "/d"]
    assert robot.result.retries == 1
    assert not state.outstanding


# ----------------------------------------------------------------------
# Bounded retries and terminal errors
# ----------------------------------------------------------------------
def test_retry_budget_exhaustion_is_terminal(site, store):
    profile = faulty(abort_requests=tuple(range(1, 300)),
                     abort_after_bytes=0)
    config = ClientConfig(http_version=HTTP11, retry_budget=3,
                          max_consecutive_failures=100,
                          retry_backoff_base=0.01)
    _, result = run_fetch(site, store, config, profile,
                          follow_images=False)
    assert not result.complete
    assert "retry budget exhausted" in result.terminal_error
    assert result.retries == 4      # the failure that broke the budget
    assert any(error.startswith("terminal:") for error in result.errors)


def test_consecutive_zero_progress_failures_are_terminal(site, store):
    profile = faulty(abort_requests=tuple(range(1, 300)),
                     abort_after_bytes=0)
    config = ClientConfig(http_version=HTTP11, retry_budget=100,
                          max_consecutive_failures=3,
                          retry_backoff_base=0.01)
    robot, result = run_fetch(site, store, config, profile,
                              follow_images=False)
    assert not result.complete
    assert "consecutive connection failures" in result.terminal_error
    assert result.recovery.count("client", "backoff") == 2


def test_on_complete_fires_on_terminal_error(site, store):
    profile = faulty(abort_requests=tuple(range(1, 300)),
                     abort_after_bytes=0)
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, profile)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  ClientConfig(max_consecutive_failures=2,
                               follow_images=False))
    done = []
    robot.on_complete = done.append
    robot.fetch(site.html_url)
    net.run()
    assert done and done[0].terminal_error is not None


# ----------------------------------------------------------------------
# Watchdog and downgrade ladder
# ----------------------------------------------------------------------
def test_watchdog_aborts_stalled_connection_and_recovers(site, store):
    profile = faulty(stall_requests=(1,), stall_seconds=4.0)
    config = ClientConfig(http_version=HTTP11, watchdog_timeout=3.0)
    _, result = run_fetch(site, store, config, profile,
                          follow_images=False)
    assert result.complete
    assert result.recovery.count("client", "watchdog") == 1
    assert any("watchdog" in error for error in result.errors)
    # The retry could only be answered after the stall released the
    # server's serial CPU.
    assert result.elapsed > 4.0


def test_watchdog_stays_quiet_on_a_healthy_run(site, store):
    config = ClientConfig(http_version=HTTP11, pipeline=True,
                          watchdog_timeout=3.0)
    _, result = run_fetch(site, store, config)
    assert result.complete
    assert result.recovery.count("client", "watchdog") == 0
    assert len(result.responses) == 43


def test_downgrade_ladder_steps_off_pipelining(site, store):
    """A close-after-one server kills the pipeline once; the ladder
    drops to serialized requests and the fetch completes."""
    profile = faulty(close_after_one=True)
    config = ClientConfig(http_version=HTTP11, pipeline=True,
                          downgrade_after=1)
    robot, result = run_fetch(site, store, config, profile)
    assert result.complete
    assert len(result.responses) == 43
    assert result.recovery.count("client", "downgrade") >= 1
    assert robot._downgrade_level >= 1


# ----------------------------------------------------------------------
# 5xx retry
# ----------------------------------------------------------------------
def test_503_is_retried_until_success(site, store):
    profile = faulty(error_503_requests=(1,))
    _, result = run_fetch(site, store, ClientConfig(), profile,
                          follow_images=False)
    assert result.complete
    assert result.responses[site.html_url].status == 200
    assert result.retries == 1
    assert result.recovery.count("client", "retry-5xx") == 1


def test_503_accepted_after_retry_budget(site, store):
    profile = faulty(error_503_requests=tuple(range(1, 10)))
    config = ClientConfig(retry_server_errors=3)
    _, result = run_fetch(site, store, config, profile,
                          follow_images=False)
    assert result.complete
    assert result.responses[site.html_url].status == 503
    assert result.retries == 3
