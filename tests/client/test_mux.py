"""Behavioural tests for the MUX client against the MUX server.

The golden traces pin the wire bytes; these tests pin the *semantics*:
stream accounting, speculative push, and cancel-on-duplicate.
"""

import pytest

from repro.client import FIRST_TIME, REVALIDATE
from repro.client.mux import MuxClient
from repro.content import build_microscape_site
from repro.core.modes import HTTP_MUX, HTTP_MUX_PUSH
from repro.core.scenarios import prefill_cache
from repro.http import MemoryCache
from repro.server import APACHE, ResourceStore, SimHttpServer
from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


def run_mux(site, store, *, push=False, scenario=FIRST_TIME,
            prefill=False):
    mode = HTTP_MUX_PUSH if push else HTTP_MUX
    net = TwoHostNetwork(LAN)
    server = SimHttpServer(net.sim, net.server, store, APACHE,
                           mux=True, push=push)
    cache = MemoryCache()
    if prefill:
        prefill_cache(cache, store, site, APACHE)
    robot = MuxClient(net.sim, net.client, SERVER_HOST, server.port,
                      mode.client_config(), cache)
    known = site.all_urls() if scenario == REVALIDATE else None
    result = robot.fetch(site.html_url, scenario, known_urls=known)
    net.run()
    return net, server, robot, result


def test_mux_first_time_multiplexes_one_connection(site):
    store = ResourceStore.from_site(site)
    net, server, robot, result = run_mux(site, store)
    assert result.complete
    assert len(result.responses) == 43
    for url, response in result.responses.items():
        assert response.status == 200
        assert response.body == site.objects[url].body
    assert result.connections_used == 1
    assert result.max_parallel_connections == 1
    assert server.requests_served == 43
    assert server.pushes_promised == 0


def test_push_first_time_serves_images_without_requests(site):
    store = ResourceStore.from_site(site)
    net, server, robot, result = run_mux(site, store, push=True)
    assert result.complete
    assert len(result.responses) == 43
    # One real request (the HTML); every inline GIF arrived as a push.
    assert server.requests_served == 1
    assert server.pushes_promised == 42
    assert server.pushes_sent == 42
    assert robot.pushes_cancelled == 0
    # Pushed bodies are byte-correct, same as requested ones.
    for obj in site.image_objects:
        assert result.responses[obj.url].body == obj.body


def test_push_stays_dormant_on_revalidation(site):
    store = ResourceStore.from_site(site)
    net, server, robot, result = run_mux(site, store, push=True,
                                         scenario=REVALIDATE,
                                         prefill=True)
    assert result.complete
    # The HTML 304 means nothing qualifies for push.
    assert server.pushes_promised == 0
    assert all(response.status == 304
               for response in result.responses.values())


def test_client_cancels_pushes_it_already_asked_for(site):
    # Warm cache, but the HTML changed on the server: revalidation gets
    # a 200 HTML back, the server speculatively pushes all 42 GIFs —
    # and the client, which already has conditional GETs in flight for
    # every one of them, refuses every promise with CANCEL.
    store = ResourceStore.from_site(site)
    cache = MemoryCache()
    prefill_cache(cache, store, site, APACHE)
    store.update(site.html_url,
                 store.get(site.html_url).body + b"<!-- rev2 -->")

    net = TwoHostNetwork(LAN)
    server = SimHttpServer(net.sim, net.server, store, APACHE,
                           mux=True, push=True)
    robot = MuxClient(net.sim, net.client, SERVER_HOST, server.port,
                      HTTP_MUX_PUSH.client_config(), cache)
    result = robot.fetch(site.html_url, REVALIDATE,
                         known_urls=site.all_urls())
    net.run()

    assert result.complete
    assert result.responses[site.html_url].status == 200
    assert server.pushes_promised == 42
    assert robot.pushes_cancelled == 42
    # Cancelled pushes never cost response transfers: the images all
    # came back as 304s to the client's own conditional GETs.
    assert sum(1 for r in result.responses.values()
               if r.status == 304) == 42


def test_mux_and_push_traces_stay_deterministic(site):
    store = ResourceStore.from_site(site)

    def trace(push):
        net, *_ = run_mux(site, store, push=push)
        return net.trace.format_trace()

    assert trace(True) == trace(True)
    assert trace(False) == trace(False)
