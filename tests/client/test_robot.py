"""Integration tests for the robot client against the simulated server."""

import pytest

from repro.client import FIRST_TIME, REVALIDATE, ClientConfig, Robot
from repro.content import build_microscape_site
from repro.core.scenarios import prefill_cache
from repro.http import HTTP10, HTTP11, MemoryCache
from repro.server import (APACHE, APACHE_12B2, JIGSAW, ResourceStore,
                          SimHttpServer)
from repro.simnet import LAN, SERVER_HOST, TwoHostNetwork


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


@pytest.fixture(scope="module")
def store(site):
    return ResourceStore.from_site(site)


def run_fetch(site, store, config, scenario=FIRST_TIME, profile=APACHE,
              prefill=False):
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, profile)
    cache = MemoryCache()
    if prefill:
        prefill_cache(cache, store, site, profile)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80, config, cache)
    known = site.all_urls() if scenario == REVALIDATE else None
    result = robot.fetch(site.html_url, scenario, known_urls=known)
    net.run()
    return net, result


# ----------------------------------------------------------------------
# First-time retrieval in the four modes
# ----------------------------------------------------------------------
def test_http10_first_time_retrieves_everything(site, store):
    config = ClientConfig(http_version=HTTP10, max_connections=4)
    net, result = run_fetch(site, store, config)
    assert result.complete
    assert len(result.responses) == 43
    for url, response in result.responses.items():
        assert response.status == 200
        assert response.body == site.objects[url].body
    assert result.connections_used == 43
    assert result.max_parallel_connections == 4


def test_http11_persistent_uses_one_connection(site, store):
    config = ClientConfig(http_version=HTTP11)
    net, result = run_fetch(site, store, config)
    assert result.complete
    assert result.connections_used == 1
    assert len(result.responses) == 43


def test_pipelined_uses_fewer_packets_than_persistent(site, store):
    def packets(config):
        net, result = run_fetch(site, store, config)
        assert result.complete
        return net.trace.summary().packets

    serialized = packets(ClientConfig(http_version=HTTP11))
    pipelined = packets(ClientConfig(http_version=HTTP11, pipeline=True))
    assert pipelined < serialized


def test_compressed_html_still_parses_and_fetches_all(site, store):
    config = ClientConfig(http_version=HTTP11, pipeline=True,
                          accept_deflate=True)
    net, result = run_fetch(site, store, config)
    assert result.complete
    html = result.responses[site.html_url]
    # Robot inflated the body transparently.
    assert html.body == site.html.body
    assert len(result.responses) == 43


def test_requests_are_compact(site, store):
    """The paper: 'an average request size of around 190 bytes' —
    'significantly smaller than many existing product HTTP
    implementations'.  Our synthetic URLs are shorter than the real
    Netscape/Microsoft paths, so the robot lands somewhat below 190;
    the invariant is compact-vs-browser."""
    config = ClientConfig(http_version=HTTP11, pipeline=True)
    _, result = run_fetch(site, store, config)
    assert 90 <= result.mean_request_bytes <= 240
    from repro.core.browsers import NETSCAPE_40B5
    _, browser_result = run_fetch(site, store,
                                  NETSCAPE_40B5.client_config())
    assert browser_result.mean_request_bytes > \
        result.mean_request_bytes + 50


# ----------------------------------------------------------------------
# Revalidation
# ----------------------------------------------------------------------
def test_http11_revalidation_gets_43_304s(site, store):
    config = ClientConfig(http_version=HTTP11, pipeline=True)
    _, result = run_fetch(site, store, config, REVALIDATE, prefill=True)
    assert result.complete
    statuses = [r.status for r in result.responses.values()]
    assert statuses.count(304) == 43


def test_http10_revalidation_uses_get_plus_head(site, store):
    config = ClientConfig(http_version=HTTP10, max_connections=4,
                          reval_strategy="get-plus-head")
    _, result = run_fetch(site, store, config, REVALIDATE, prefill=True)
    assert result.complete
    html = result.responses[site.html_url]
    assert html.status == 200 and html.request_method == "GET"
    heads = [r for r in result.responses.values()
             if r.request_method == "HEAD"]
    assert len(heads) == 42
    assert all(r.status == 200 and r.body == b"" for r in heads)


def test_conditional_requests_carry_etags(site, store):
    """The HTTP/1.1 robot validates with If-None-Match entity tags."""
    seen_requests = []
    from repro.http import RequestParser
    config = ClientConfig(http_version=HTTP11, pipeline=True)
    net = TwoHostNetwork(LAN)
    server = SimHttpServer(net.sim, net.server, store, APACHE)
    tap_parser = RequestParser()
    net.link.taps.append(
        lambda seg, now: seen_requests.extend(
            tap_parser.feed(seg.payload))
        if seg.dport == 80 and seg.payload else None)
    cache = MemoryCache()
    prefill_cache(cache, store, site, APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80, config, cache)
    result = robot.fetch(site.html_url, REVALIDATE,
                         known_urls=site.all_urls())
    net.run()
    assert result.complete
    hero = next(r for r in seen_requests
                if r.target == "/gifs/hero.gif")
    assert hero.headers.get("If-None-Match") == \
        store.get("/gifs/hero.gif").etag


def test_reval_refetch_html_transfers_body(site, store):
    config = ClientConfig(http_version=HTTP11, reval_refetch_html=True)
    _, result = run_fetch(site, store, config, REVALIDATE, prefill=True)
    assert result.responses[site.html_url].status == 200
    assert result.responses[site.html_url].body == site.html.body


# ----------------------------------------------------------------------
# Robustness
# ----------------------------------------------------------------------
def test_retry_when_server_caps_requests(site, store):
    """Apache 1.2b2 closes every 5 responses; the pipelined robot must
    re-issue unanswered requests and still finish."""
    config = ClientConfig(http_version=HTTP11, pipeline=True)
    _, result = run_fetch(site, store, config, profile=APACHE_12B2)
    assert result.complete
    assert len(result.responses) == 43
    assert result.retries >= 1
    assert result.connections_used >= 8    # ~43/5 connections


def test_keepalive_browser_style_fetch(site, store):
    config = ClientConfig(http_version=HTTP10, max_connections=4,
                          keep_alive=True)
    _, result = run_fetch(site, store, config)
    assert result.complete
    assert len(result.responses) == 43
    # Keep-alive: far fewer connections than requests.
    assert result.connections_used <= 8


def test_robot_is_single_use(site, store):
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80, ClientConfig())
    robot.fetch(site.html_url)
    with pytest.raises(RuntimeError):
        robot.fetch(site.html_url)


def test_fetch_without_images(site, store):
    config = ClientConfig(follow_images=False)
    _, result = run_fetch(site, store, config)
    assert result.complete
    assert list(result.responses) == [site.html_url]


def test_on_complete_callback(site, store):
    net = TwoHostNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  ClientConfig(follow_images=False))
    done = []
    robot.on_complete = done.append
    robot.fetch(site.html_url)
    net.run()
    assert done and done[0].complete
