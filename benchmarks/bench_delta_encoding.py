"""Related work [26], implemented: delta-encoding changed resources.

The paper cites Mogul/Douglis/Feldmann/Krishnamurthy's companion
SIGCOMM '97 study on "potential benefits of delta-encoding and data
compression for HTTP".  This bench measures the idiom on Microscape's
HTML after a small edit: re-fetch full, re-fetch deflated, or fetch a
226 delta against the cached instance.
"""

import pytest

from repro.content import build_microscape_site
from repro.http import HTTP11, Headers, Request, deflate_encode
from repro.http.delta import DELTA_IM_TOKEN, apply_delta
from repro.server import APACHE, ResourceStore
from repro.server.static import build_response


@pytest.fixture(scope="module")
def changed_store():
    store = ResourceStore.from_site(build_microscape_site())
    old = store.get("/home.html")
    new_body = old.body.replace(b"copyright 1997",
                                b"copyright 1997-1998", 1)
    store.update("/home.html", new_body)
    return store, old, new_body


def fetch_delta(store, old_etag):
    request = Request("GET", "/home.html", HTTP11, Headers([
        ("Host", "h"), ("If-None-Match", old_etag),
        ("A-IM", DELTA_IM_TOKEN)]))
    return build_response(store, request, APACHE)


def test_delta_encoding(benchmark, changed_store):
    store, old, new_body = changed_store
    response = benchmark(fetch_delta, store, old.etag)

    assert response.status == 226
    assert apply_delta(old.body, response.body) == new_body

    full_bytes = len(new_body)
    deflated_bytes = len(deflate_encode(new_body))
    delta_bytes = len(response.body)

    # Deflate gives ~3x; the delta gives orders of magnitude on a
    # small edit — the [26] result.
    assert deflated_bytes < full_bytes / 2
    assert delta_bytes < deflated_bytes / 20
    assert delta_bytes < 200

    print()
    print(f"changed 43 KB page, one-line edit:")
    print(f"  full 200 response body:    {full_bytes:6d} B")
    print(f"  deflate content coding:    {deflated_bytes:6d} B")
    print(f"  delta vs cached instance:  {delta_bytes:6d} B (226 IM Used)")
