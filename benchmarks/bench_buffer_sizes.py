"""Ablation: the pipeline output-buffer size (paper §Pipelining).

"We experimented with the output buffer size and found that 1024 bytes
is a good compromise.  In case the MTU is 536 or 512 we will produce
two full TCP segments, and if the MTU is 1460 (Ethernet size) then we
can nicely fit into one segment."  This sweep re-runs the pipelined
*first-time retrieval* — where image requests trickle in as the HTML is
parsed, so the buffer threshold actually gates what reaches TCP — with
thresholds from 128 bytes to 8 KB.  (During revalidation the whole
batch is written before the handshake completes, and TCP itself
coalesces the queue; the buffer only matters for requests issued while
the connection is live.)
"""

import pytest

from repro.client.robot import ClientConfig
from repro.core import FIRST_TIME, HTTP11_PIPELINED, run_experiment
from repro.http import HTTP11
from repro.server import APACHE
from repro.simnet import WAN

SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


def run_with_buffer(size, seed=0):
    config = ClientConfig(http_version=HTTP11, pipeline=True,
                          output_buffer_size=size)
    return run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=WAN,
                          profile=APACHE,
                          seed=seed, client_config=config)


@pytest.fixture(scope="module")
def sweep():
    return {size: run_with_buffer(size) for size in SIZES}


def test_buffer_sizes(benchmark, sweep):
    result = benchmark(lambda: run_with_buffer(1024, seed=1))
    assert result.fetch.complete

    # Tiny buffers flush request slivers: strictly more client packets.
    assert (sweep[128].packets_client_to_server
            > sweep[1024].packets_client_to_server)
    # Beyond one MSS there is nothing left to coalesce.
    assert abs(sweep[2048].packets - sweep[8192].packets) <= 3
    # 1024 sits on the plateau: within a couple packets of the best.
    best = min(cell.packets for cell in sweep.values())
    assert sweep[1024].packets <= best + 4
    # Elapsed time is insensitive across the sweep (the requests are a
    # tiny fraction of the exchange).
    times = [cell.elapsed for cell in sweep.values()]
    assert max(times) - min(times) < 0.5

    print()
    print(f"{'buffer':>7s} {'Pa':>5s} {'c->s':>5s} {'Sec':>6s}")
    for size, cell in sweep.items():
        print(f"{size:7d} {cell.packets:5d} "
              f"{cell.packets_client_to_server:5d} {cell.elapsed:6.2f}")
