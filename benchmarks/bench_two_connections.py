"""Ablation: the HTTP/1.1 two-connection allowance (paper §Connection
Management).

"The HTTP/1.1 proposed standard specification does specify at most two
connections to be established between a client/server pair. ...
Dividing the mean length of packet trains down by a factor of two
diminish the benefits to the Internet (and possibly to the end user due
to slow start) substantially."  This bench runs pipelined first
retrieval over one vs. two vs. four connections and measures the
packet-train effect.
"""

import pytest

from repro.client.robot import ClientConfig
from repro.core import FIRST_TIME, HTTP11_PIPELINED, run_experiment
from repro.http import HTTP11
from repro.server import APACHE
from repro.simnet import WAN


def run_with_connections(count, seed=0):
    config = ClientConfig(http_version=HTTP11, pipeline=True,
                          max_connections=count)
    return run_experiment(HTTP11_PIPELINED, FIRST_TIME, environment=WAN,
                          profile=APACHE,
                          seed=seed, client_config=config)


@pytest.fixture(scope="module")
def cells():
    return {count: run_with_connections(count) for count in (1, 2, 4)}


def test_two_connections(benchmark, cells):
    result = benchmark(lambda: run_with_connections(2, seed=1))
    assert result.fetch.complete

    one, two, four = cells[1], cells[2], cells[4]
    # Every variant retrieves the full site correctly (verified in the
    # runner) using exactly its connection budget.
    assert one.connections_used == 1
    assert two.connections_used == 2
    assert four.connections_used == 4

    # The paper's concern: packet trains shorten roughly with the
    # connection count.
    assert two.mean_packets_per_connection < \
        one.mean_packets_per_connection * 0.7
    assert four.mean_packets_per_connection < \
        one.mean_packets_per_connection * 0.45
    # Total packets grow only modestly (extra handshakes/closes).
    assert two.packets < one.packets * 1.2
    # Two connections still beat HTTP/1.0's packet economy by far.
    from repro.core import HTTP10_MODE
    http10 = run_experiment(HTTP10_MODE, FIRST_TIME, environment=WAN,
                            profile=APACHE, seed=0)
    assert two.packets < http10.packets / 2

    print()
    print(f"{'connections':>11s} {'Pa':>5s} {'train len':>10s} "
          f"{'Sec':>6s}")
    for count, cell in cells.items():
        print(f"{count:11d} {cell.packets:5d} "
              f"{cell.mean_packets_per_connection:10.1f} "
              f"{cell.elapsed:6.2f}")
