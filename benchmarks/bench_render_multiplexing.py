"""Future work, measured: rendering timelines and poor man's multiplexing.

The paper stops at a belief — "with the range request techniques
outlined in this paper, we believe HTTP/1.1 can perform well over a
single connection" — because its browser "has not yet been optimized to
use HTTP/1.1 features".  This bench runs the experiment the authors
could not: time-to-layout (all image dimensions known) and
time-to-full-render on the 28.8k PPP link for four strategies,
including ranged metadata prefixes over one pipelined connection.
"""

import pytest

from repro.client.robot import ClientConfig
from repro.core.render import measure_render
from repro.http import HTTP10, HTTP11
from repro.server import APACHE
from repro.simnet import PPP


STRATEGIES = {
    "HTTP/1.0 x4 connections": ClientConfig(
        http_version=HTTP10, max_connections=4),
    "HTTP/1.1 persistent": ClientConfig(http_version=HTTP11),
    "HTTP/1.1 pipelined": ClientConfig(http_version=HTTP11,
                                       pipeline=True),
    "pipelined + range prefixes": ClientConfig(
        http_version=HTTP11, pipeline=True, range_prefix_bytes=256),
}


@pytest.fixture(scope="module")
def timelines():
    return {name: measure_render(config, PPP, APACHE)
            for name, config in STRATEGIES.items()}


def test_render_multiplexing(benchmark, timelines):
    result = benchmark(lambda: measure_render(
        STRATEGIES["pipelined + range prefixes"], PPP, APACHE, seed=1))
    assert result.verified

    ranged = timelines["pipelined + range prefixes"]
    pipelined = timelines["HTTP/1.1 pipelined"]
    http10 = timelines["HTTP/1.0 x4 connections"]

    # All strategies transfer correct content.
    assert all(m.verified for m in timelines.values())
    # Range prefixes pull layout far forward on a single connection...
    assert ranged.layout_complete < pipelined.layout_complete * 0.6
    # ...beating even four parallel HTTP/1.0 connections...
    assert ranged.layout_complete < http10.layout_complete
    # ...at a small full-render premium over plain pipelining.
    assert ranged.full_render < pipelined.full_render * 1.15
    # And plain pipelining still wins full render outright.
    assert pipelined.full_render < http10.full_render

    print()
    print(f"{'strategy':28s} {'layout':>8s} {'first img':>10s} "
          f"{'full render':>12s}")
    for name, m in timelines.items():
        print(f"{name:28s} {m.layout_complete:8.1f} "
              f"{m.first_image_complete:10.1f} {m.full_render:12.1f}")
