"""Shared helpers for the per-table benchmark modules.

Each ``bench_tableNN.py`` module does three things:

1. **benchmark** a representative cell with pytest-benchmark (wall time
   of the whole simulated experiment),
2. reproduce the full table once (single seed for speed) and **assert
   the paper's shape** — orderings and approximate factors,
3. **print** the measured-vs-paper table (visible with ``pytest -s``).

Tables 4–9 share one grid layout, so :func:`protocol_table_suite`
builds the whole module namespace (fixture plus test) and each
``bench_table0N.py`` reduces to a two-line shim.

Absolute numbers are not asserted tightly: the substrate is a
simulator, not the authors' testbed.  Shape is.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.analysis.paperdata import PROTOCOL_TABLES, PaperCell
from repro.analysis import TABLE_NUMBERS
from repro.core import FIRST_TIME, REVALIDATE, TABLE_MODES
from repro.core.runner import AveragedResult
from repro.matrix import ExperimentSpec, MatrixRunner, run_unit

__all__ = ["run_protocol_table", "assert_protocol_table_shape",
           "format_cells", "representative_cell",
           "protocol_table_suite"]

Cells = Dict[Tuple[str, str], AveragedResult]


def run_protocol_table(server_name: str, environment_name: str) -> Cells:
    """Run every (mode, scenario) cell of one table with one seed."""
    keys = [(mode.name, scenario)
            for mode in TABLE_MODES[environment_name]
            for scenario in (FIRST_TIME, REVALIDATE)]
    specs = [ExperimentSpec(mode=mode_name, scenario=scenario,
                            environment=environment_name,
                            server=server_name, seeds=(0,))
             for mode_name, scenario in keys]
    results = MatrixRunner().run_many(specs)
    return dict(zip(keys, results))


def representative_cell(server_name: str, environment_name: str):
    """The cell benchmarked for wall-clock: pipelined first retrieval."""
    spec = ExperimentSpec(mode="pipelined", scenario=FIRST_TIME,
                          environment=environment_name,
                          server=server_name, seeds=(0,))

    def run():
        return run_unit(spec, 0)[0]

    return run


def assert_protocol_table_shape(server_name: str, environment_name: str,
                                cells: Cells) -> None:
    """The paper's qualitative table structure, as assertions."""
    has_http10 = ("HTTP/1.0", FIRST_TIME) in cells
    pipelined_f = cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    pipelined_r = cells[("HTTP/1.1 Pipelined", REVALIDATE)]
    persistent_f = cells[("HTTP/1.1", FIRST_TIME)]
    persistent_r = cells[("HTTP/1.1", REVALIDATE)]
    compressed_f = cells[
        ("HTTP/1.1 Pipelined w. compression", FIRST_TIME)]

    if has_http10:
        http10_f = cells[("HTTP/1.0", FIRST_TIME)]
        http10_r = cells[("HTTP/1.0", REVALIDATE)]
        # Packets: pipelining wins >=2x first-time, >=10x revalidation.
        assert http10_f.packets / pipelined_f.packets >= 2.0
        assert http10_r.packets / pipelined_r.packets >= 10.0
        # Elapsed: pipelined beats 1.0; persistent-only does not.
        assert pipelined_f.elapsed < http10_f.elapsed
        assert persistent_f.elapsed >= http10_f.elapsed * 0.85
    # Pipelining always beats serialized persistence.
    assert pipelined_f.elapsed < persistent_f.elapsed
    assert pipelined_r.elapsed < persistent_r.elapsed
    assert pipelined_f.packets <= persistent_f.packets
    assert pipelined_r.packets < persistent_r.packets / 2
    # Compression removes ~1/6 of the payload and never hurts time.
    assert compressed_f.payload_bytes < pipelined_f.payload_bytes * 0.90
    assert compressed_f.packets < pipelined_f.packets
    # Cell-by-cell sanity against the paper, loose factor-of-two band
    # on packet counts.
    paper = PROTOCOL_TABLES[(server_name, environment_name)]
    for key, cell in cells.items():
        expected = paper[key]
        assert 0.5 <= cell.packets / expected.packets <= 2.0, (
            key, cell.packets, expected.packets)


def format_cells(server_name: str, environment_name: str,
                 cells: Cells) -> str:
    """Measured-vs-paper rendering for one table."""
    paper = PROTOCOL_TABLES[(server_name, environment_name)]
    number = TABLE_NUMBERS[(server_name, environment_name)]
    lines = [f"Table {number} - {server_name} - {environment_name} "
             f"(single seed)"]
    header = (f"{'mode':34s} {'scenario':11s} "
              f"{'Pa':>7s} {'Pa(p)':>7s} {'Bytes':>8s} {'B(p)':>8s} "
              f"{'Sec':>7s} {'Sec(p)':>7s}")
    lines.append(header)
    for key, cell in cells.items():
        expected: PaperCell = paper[key]
        lines.append(
            f"{key[0]:34s} {key[1]:11s} "
            f"{cell.packets:7.0f} {expected.packets:7.1f} "
            f"{cell.payload_bytes:8.0f} {expected.payload_bytes:8.0f} "
            f"{cell.elapsed:7.2f} {expected.seconds:7.2f}")
    return "\n".join(lines)


def protocol_table_suite(server_name: str, environment_name: str,
                         number: int) -> Dict[str, object]:
    """Build a bench_tableNN module namespace (fixture + test).

    Use as ``globals().update(protocol_table_suite("Jigsaw", "LAN", 4))``
    so the grid definition lives in one place and the per-table modules
    stay declarative.
    """

    @pytest.fixture(scope="module", name="cells")
    def cells_fixture():
        return run_protocol_table(server_name, environment_name)

    def test_table(benchmark, cells):
        result = benchmark(representative_cell(server_name,
                                               environment_name))
        # run_unit raises ExperimentError on an incomplete or corrupt
        # transfer, so a returned result is a completed one.
        assert result.packets > 0
        assert result.elapsed > 0
        assert_protocol_table_shape(server_name, environment_name, cells)
        print()
        print(format_cells(server_name, environment_name, cells))

    return {
        "SERVER": server_name,
        "ENVIRONMENT": environment_name,
        "cells": cells_fixture,
        f"test_table{number:02d}": test_table,
    }
