"""Table 04: Jigsaw server, LAN environment."""

from _common import protocol_table_suite

globals().update(protocol_table_suite("Jigsaw", "LAN", 4))
