"""Section "Compression Issues": deflate on the Microscape HTML.

The ~3x factor (42K -> 11K), the resulting ~19% payload cut, and the
tag-case effect ("compression is significantly worse ... if mixed case
HTML tags are used").
"""

import pytest

from repro.content import build_microscape_site, change_tag_case
from repro.http import compression_ratio, deflate_decode, deflate_encode


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


def test_html_compression(benchmark, site):
    html = site.html.body
    compressed = benchmark(deflate_encode, html)

    # ~3x on the HTML page (paper: 42K -> 11K, ratio ~0.27).
    ratio = len(compressed) / len(html)
    assert 0.18 <= ratio <= 0.35
    assert deflate_decode(compressed) == html

    # ~19% of the total page payload disappears.
    total = site.html.size + site.total_image_bytes
    payload_saving = (len(html) - len(compressed)) / total
    assert 0.14 <= payload_saving <= 0.25

    # Tag-case experiment: mixed-case tags compress worse.
    text = html.decode("latin-1")
    ratio_lower = compression_ratio(
        change_tag_case(text, "lower").encode("latin-1"))
    ratio_mixed = compression_ratio(
        change_tag_case(text, "mixed").encode("latin-1"))
    assert ratio_mixed > ratio_lower

    print()
    print(f"deflate: {len(html)} -> {len(compressed)} B "
          f"(ratio {ratio:.2f}; paper ~0.27)")
    print(f"payload saving: {payload_saving:.1%} (paper ~19%)")
    print(f"tag case: lower {ratio_lower:.3f} vs mixed "
          f"{ratio_mixed:.3f} (paper .27 vs .35)")
