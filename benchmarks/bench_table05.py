"""Table 05: Apache server, LAN environment."""

from _common import protocol_table_suite

globals().update(protocol_table_suite("Apache", "LAN", 5))
