"""Table 07: Apache server, WAN environment."""

from _common import protocol_table_suite

globals().update(protocol_table_suite("Apache", "WAN", 7))
