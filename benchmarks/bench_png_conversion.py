"""Section "Converting images from GIF to PNG and MNG".

Batch-convert the 40 static GIFs to PNG (keeping the 16-byte gAMA
chunk, as the paper's conversion did) and the 2 animations to MNG,
with the real codecs.  Paper: 103,299 -> 92,096 B static (10.8% saved),
24,988 -> 16,329 B animations (34.7% saved), and sub-200-byte images
grow.
"""

import pytest

from repro.analysis.paperdata import CONTENT_NUMBERS
from repro.content import build_microscape_site, convert_site_to_png


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


def test_png_conversion(benchmark, site):
    report = benchmark(convert_site_to_png, site)

    static_saving = report.static_saved / report.static_gif_total
    animation_saving = (report.animation_saved
                        / report.animation_gif_total)
    # Paper: 10.8% static saving, 34.7% animation saving.
    assert 0.04 <= static_saving <= 0.18
    assert 0.25 <= animation_saving <= 0.50

    # Sub-200-byte images all grow (PNG's fixed costs).
    for record in report.static:
        if record.gif_bytes < 200:
            assert record.saved < 0
    # The big images all shrink (deflate beats LZW).
    for record in report.static:
        if record.gif_bytes > 3000:
            assert record.saved > 0

    # gAMA costs exactly 16 bytes per image, as the paper notes.
    no_gamma = convert_site_to_png(site, include_gamma=False)
    assert (report.static_png_total - no_gamma.static_png_total
            == CONTENT_NUMBERS["gamma_bytes_per_image"]
            * len(report.static))

    print()
    print(f"GIF->PNG: {report.static_gif_total} -> "
          f"{report.static_png_total} B "
          f"({static_saving:.1%}; paper 103299 -> 92096, 10.8%)")
    print(f"GIF->MNG: {report.animation_gif_total} -> "
          f"{report.animation_mng_total} B "
          f"({animation_saving:.1%}; paper 24988 -> 16329, 34.7%)")
    print(f"images that grew: {len(report.grew())} (all small)")
