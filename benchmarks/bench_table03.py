"""Table 3: the initial (pre-tuning) LAN cache-revalidation test.

Jigsaw before Nagle was disabled, the robot before explicit flushes and
If-None-Match validation, with the libwww two-file disk cache — the
configuration whose surprising elapsed times ("simultaneously very
happy and quite disappointed") started the paper's tuning journey.
"""

import pytest

from repro.analysis.paperdata import TABLE3
from repro.core import (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED,
                        REVALIDATE, initial_tuning_client_config,
                        run_experiment)
from repro.server import JIGSAW_INITIAL
from repro.simnet import LAN

MODES = (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED)


@pytest.fixture(scope="module")
def cells():
    return {
        mode.name: run_experiment(
            mode, REVALIDATE, environment=LAN, profile=JIGSAW_INITIAL, seed=0,
            client_config=initial_tuning_client_config(mode))
        for mode in MODES
    }


def test_table03(benchmark, cells):
    result = benchmark(lambda: run_experiment(
        HTTP11_PIPELINED, REVALIDATE, environment=LAN, profile=JIGSAW_INITIAL,
        seed=0,
        client_config=initial_tuning_client_config(HTTP11_PIPELINED)))
    assert result.fetch.complete

    http10 = cells["HTTP/1.0"]
    persistent = cells["HTTP/1.1"]
    pipelined = cells["HTTP/1.1 Pipelined"]

    # The famous inversion: persistent connections slash packets but
    # *increase* elapsed time before pipelining and tuning.
    assert persistent.packets < http10.packets / 2
    assert pipelined.packets < http10.packets / 5
    assert persistent.elapsed > 1.5 * http10.elapsed
    assert pipelined.elapsed > http10.elapsed
    assert pipelined.elapsed < persistent.elapsed

    # Socket counts match the paper's structure.
    assert persistent.connections_used == 1
    assert pipelined.connections_used == 1
    assert http10.connections_used >= 40

    print()
    print(f"{'mode':22s} {'socks':>5s} {'c->s':>5s} {'s->c':>5s} "
          f"{'Pa':>5s} {'Pa(p)':>5s} {'Sec':>6s} {'Sec(p)':>6s}")
    for name, cell in cells.items():
        paper = TABLE3[name]
        print(f"{name:22s} {cell.connections_used:5.0f} "
              f"{cell.packets_client_to_server:5.0f} "
              f"{cell.packets_server_to_client:5.0f} "
              f"{cell.packets:5.0f} {paper.total_packets:5d} "
              f"{cell.elapsed:6.2f} {paper.seconds:6.2f}")
