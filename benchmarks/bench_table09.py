"""Table 09: Apache server, PPP environment."""

from _common import protocol_table_suite

globals().update(protocol_table_suite("Apache", "PPP", 9))
