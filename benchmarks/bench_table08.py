"""Table 08: Jigsaw server, PPP environment.

Regenerates the paper's Table 08 (Pa / Bytes / Sec / %ov for each
protocol mode and scenario), benchmarks the pipelined first-retrieval
cell, and asserts the table's shape.  Run with -s to see the
measured-vs-paper rows.
"""

import pytest

from _common import (assert_protocol_table_shape, format_cells,
                     representative_cell, run_protocol_table)

SERVER = "Jigsaw"
ENVIRONMENT = "PPP"


@pytest.fixture(scope="module")
def cells():
    return run_protocol_table(SERVER, ENVIRONMENT)


def test_table08(benchmark, cells):
    result = benchmark(representative_cell(SERVER, ENVIRONMENT))
    assert result.fetch.complete
    assert_protocol_table_shape(SERVER, ENVIRONMENT, cells)
    print()
    print(format_cells(SERVER, ENVIRONMENT, cells))
