"""Table 08: Jigsaw server, PPP environment."""

from _common import protocol_table_suite

globals().update(protocol_table_suite("Jigsaw", "PPP", 8))
