"""Table 06: Jigsaw server, WAN environment."""

from _common import protocol_table_suite

globals().update(protocol_table_suite("Jigsaw", "WAN", 6))
