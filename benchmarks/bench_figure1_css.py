"""Figure 1: the "solutions" banner GIF versus its HTML+CSS equivalent.

682 bytes of GIF against ~150 bytes of ``P.banner`` rule plus markup —
"the number of bytes needed to represent the content is reduced by a
factor of more than 4, even before any transport compression is
applied", and one HTTP request disappears.
"""

import pytest

from repro.content import (banner_replacement, build_microscape_site,
                           encode_gif, parse_css)
from repro.http import deflate_encode


def make_figure1_gif():
    """The site's "solutions" banner, calibrated to the paper's 682 B."""
    site = build_microscape_site()
    solutions = next(o for o in site.image_objects
                     if o.text == "solutions")
    return encode_gif(solutions.image)


def test_figure1_css(benchmark):
    gif_bytes = benchmark(make_figure1_gif)
    replacement = banner_replacement("solutions")

    # The GIF lands in the Figure-1 size region (paper: 682 bytes).
    assert 450 <= len(gif_bytes) <= 900
    # The replacement is ~150 bytes and >= 4x smaller than 682.
    assert replacement.byte_size <= 180
    assert 682 / replacement.byte_size >= 4.0

    # The CSS is real CSS1: it reparses to the same rule.
    sheet = parse_css(replacement.css.serialize())
    assert sheet.rules[0].get("font") == "bold oblique 20px sans-serif"
    assert sheet.rules[0].get("background") == "#FC0"

    # And it transport-compresses further, the GIF does not.
    assert len(deflate_encode(
        replacement.html.encode() +
        replacement.css.serialize(compact=True).encode())) < \
        replacement.byte_size
    assert len(deflate_encode(gif_bytes)) > len(gif_bytes) * 0.8

    print()
    print(f"Figure 1: GIF {len(gif_bytes)} B (paper 682) vs HTML+CSS "
          f"{replacement.byte_size} B (paper ~150); "
          f"requests saved: 1")
