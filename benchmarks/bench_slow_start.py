"""Ablation: initial congestion window and the cost of slow start.

The paper: "The exact results may depend on how the slow start
algorithm is implemented on the particular platform.  Some TCP stacks
implement slow start using one TCP segment whereas others implement it
using two packets."  And the core argument for persistence: HTTP/1.0
restarts slow start 43 times per page, so "most HTTP/1.0 operations use
TCP at its least efficient".
"""

import pytest

from repro.core import (FIRST_TIME, HTTP10_MODE, HTTP11_PIPELINED,
                        run_experiment)
from repro.core import runner as runner_mod
from repro.server import APACHE
from repro.simnet import WAN
from repro.simnet.tcp import TcpConfig


def run_with_initial_cwnd(mode, segments, seed=0):
    """Run with a patched *server* initial congestion window (the
    server sends the bulk data, so its window is the one slow start
    gates)."""
    original = runner_mod.TwoHostNetwork

    def patched(environment, **kwargs):
        kwargs["server_config"] = TcpConfig(
            mss=environment.mss, initial_cwnd_segments=segments,
            delack_delay=0.050)
        return original(environment, **kwargs)

    runner_mod.TwoHostNetwork = patched
    try:
        return run_experiment(mode, FIRST_TIME, environment=WAN,
                              profile=APACHE, seed=seed)
    finally:
        runner_mod.TwoHostNetwork = original


@pytest.fixture(scope="module")
def cells():
    out = {}
    for segments in (1, 2, 4):
        out[("HTTP/1.0", segments)] = run_with_initial_cwnd(
            HTTP10_MODE, segments)
        out[("pipelined", segments)] = run_with_initial_cwnd(
            HTTP11_PIPELINED, segments)
    return out


def test_slow_start_ablation(benchmark, cells):
    result = benchmark(lambda: run_with_initial_cwnd(HTTP11_PIPELINED, 2,
                                                     seed=1))
    assert result.fetch.complete

    # A single persistent connection amortizes slow start once; 43
    # fresh connections pay it 43 times.  Growing the initial window
    # therefore helps HTTP/1.0 *more* in relative terms...
    speedup_10 = (cells[("HTTP/1.0", 1)].elapsed
                  / cells[("HTTP/1.0", 4)].elapsed)
    speedup_pl = (cells[("pipelined", 1)].elapsed
                  / cells[("pipelined", 4)].elapsed)
    assert speedup_10 > speedup_pl
    # ...but even with a 4-segment initial window, HTTP/1.0 still loses
    # to a pipelined connection with the conservative window.
    assert cells[("pipelined", 1)].elapsed < \
        cells[("HTTP/1.0", 4)].elapsed

    print()
    for (mode, segments), cell in sorted(cells.items()):
        print(f"{mode:10s} initial cwnd={segments}  "
              f"Sec={cell.elapsed:5.2f}  Pa={cell.packets}")
