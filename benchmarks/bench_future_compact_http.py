"""Future work: a compact HTTP wire representation (paper §Observations).

"HTTP requests are usually highly redundant and the actual number of
bytes that changes between requests can be as small as 10%.  Therefore,
a more compact wire representation for HTTP could increase pipelining's
benefit for cache revalidation further up to an additional factor of
five or ten."  This bench makes that back-of-the-envelope runnable: the
robot's actual 43 revalidation requests, delta-encoded.
"""

import pytest

from repro.content import build_microscape_site
from repro.http import Headers, Request
from repro.http.compact import (DeltaStreamDecoder, DeltaStreamEncoder)
from repro.server import APACHE, ResourceStore


def revalidation_requests():
    site = build_microscape_site()
    store = ResourceStore.from_site(site)
    messages = []
    for url in site.all_urls():
        request = Request("GET", url, (1, 1), Headers([
            ("Host", "www26.w3.org"),
            ("User-Agent", "W3CRobot/5.1 libwww/5.1"),
            ("Accept", "*/*"),
            ("If-None-Match", store.get(url).etag)]))
        messages.append(request.to_bytes())
    return messages


@pytest.fixture(scope="module")
def messages():
    return revalidation_requests()


def encode_stream(messages):
    encoder = DeltaStreamEncoder()
    frames = [encoder.encode(m) for m in messages]
    return frames, encoder


def test_future_compact_http(benchmark, messages):
    frames, encoder = benchmark(encode_stream, messages)

    # Lossless.
    decoder = DeltaStreamDecoder()
    decoded = []
    for frame in frames:
        decoded.extend(decoder.feed(frame))
    assert decoded == messages

    # The paper's envelope: "an additional factor of five or ten" on
    # the request bytes of a pipelined revalidation.
    assert 4.0 <= encoder.ratio <= 15.0

    # Consequence for the wire: the whole request batch now fits well
    # inside a single TCP segment instead of several.
    total_encoded = sum(len(f) for f in frames)
    assert total_encoded < 1460
    assert encoder.raw_bytes > 2 * 1460

    print()
    print(f"43 revalidation requests: {encoder.raw_bytes} B raw -> "
          f"{total_encoded} B delta-encoded "
          f"(factor {encoder.ratio:.1f}; paper's envelope: 5-10x)")
