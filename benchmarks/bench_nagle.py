"""Ablation: the Nagle x delayed-ACK interaction (paper §Nagle).

An unbuffered server that writes status line, headers and body as
separate small writes, with Nagle enabled, stalls on the client's
delayed ACKs — "significant (sometimes dramatic) transmission delays".
Setting TCP_NODELAY (the paper's recommendation) removes the stalls,
and proper response buffering makes Nagle irrelevant.
"""

import dataclasses

import pytest

from repro.core import HTTP11_PERSISTENT, REVALIDATE, run_experiment
from repro.server import APACHE, NAGLE_STALL_SERVER
from repro.simnet import LAN

FIXED = dataclasses.replace(NAGLE_STALL_SERVER, nodelay=True,
                            name="NagleStall+NODELAY")


def run(profile, seed=0):
    return run_experiment(HTTP11_PERSISTENT, REVALIDATE, environment=LAN,
                          profile=profile,
                          seed=seed)


@pytest.fixture(scope="module")
def cells():
    return {
        "nagle on, split writes": run(NAGLE_STALL_SERVER),
        "TCP_NODELAY, split writes": run(FIXED),
        "buffered (Apache)": run(APACHE),
    }


def test_nagle_ablation(benchmark, cells):
    result = benchmark(lambda: run(FIXED))
    assert result.fetch.complete

    stalled = cells["nagle on, split writes"]
    nodelay = cells["TCP_NODELAY, split writes"]
    buffered = cells["buffered (Apache)"]

    # The dramatic delay: an order of magnitude on this workload.
    assert stalled.elapsed > 5 * nodelay.elapsed
    # NODELAY fixes the stall but still pays extra small packets.
    assert nodelay.packets > buffered.packets
    # Proper buffering is both fast and packet-frugal.
    assert buffered.elapsed <= nodelay.elapsed * 1.2

    print()
    for name, cell in cells.items():
        print(f"{name:28s} Pa={cell.packets:4d} Sec={cell.elapsed:6.2f}")
