"""Ablation: output-buffer flush policies (paper §Buffer Tuning).

Compares pipelined revalidation with (a) the initial 1-second timer and
no explicit flush, (b) the tuned 50 ms timer, and (c) the explicit
application-level flush — "taking advantage of knowledge in the
application can result in a considerably faster implementation than
relying on such a timeout".
"""

import pytest

from repro.client.robot import ClientConfig
from repro.core import HTTP11_PIPELINED, REVALIDATE, run_experiment
from repro.http import HTTP11
from repro.server import APACHE
from repro.simnet import LAN


def config(flush_timeout, explicit):
    return ClientConfig(http_version=HTTP11, pipeline=True,
                        flush_timeout=flush_timeout,
                        explicit_flush=explicit)


def run(flush_timeout, explicit, seed=0):
    return run_experiment(
        HTTP11_PIPELINED, REVALIDATE, environment=LAN, profile=APACHE,
        seed=seed,
        client_config=config(flush_timeout, explicit))


@pytest.fixture(scope="module")
def cells():
    return {
        "timer 1s, no explicit flush": run(1.0, False),
        "timer 50ms, no explicit flush": run(0.05, False),
        "explicit flush": run(0.05, True),
    }


def test_flush_policies(benchmark, cells):
    result = benchmark(lambda: run(0.05, True))
    assert result.fetch.complete

    slow = cells["timer 1s, no explicit flush"]
    timer = cells["timer 50ms, no explicit flush"]
    explicit = cells["explicit flush"]

    # The 1 s timer strands the request tail for a full second.
    assert slow.elapsed > explicit.elapsed + 0.5
    # 50 ms recovers most of it; explicit flush never waits at all.
    assert timer.elapsed < slow.elapsed
    assert explicit.elapsed <= timer.elapsed * 1.05
    # Packet counts are identical: flushing affects time, not traffic.
    assert abs(explicit.packets - slow.packets) <= 6

    print()
    for name, cell in cells.items():
        print(f"{name:30s} Pa={cell.packets:4d} "
              f"Sec={cell.elapsed:6.2f}")
