"""Section "Replacing Images with HTML and CSS": the whole-page pass.

Replace every replaceable Microscape image (banners, bullets, spacers,
rules, Unicode-symbol icons) with shared-rule HTML+CSS; count the bytes
and HTTP requests saved.
"""

import pytest

from repro.content import (build_microscape_site, css_replacement_analysis,
                           ImageRole)


@pytest.fixture(scope="module")
def site():
    return build_microscape_site()


def test_css_replacement(benchmark, site):
    report = benchmark(css_replacement_analysis, site)

    # A substantial majority of the 42 images are replaceable.
    assert 20 <= report.requests_saved <= 35
    # Photographic/logo/animation content is kept.
    kept_roles = {obj.role for obj in report.kept}
    assert ImageRole.PHOTO in kept_roles
    assert ImageRole.ANIMATION in kept_roles

    # Byte accounting: replacements (with rule sharing) cost a tiny
    # fraction of the image bytes they remove.
    assert report.markup_bytes_added < report.image_bytes_removed / 5
    assert report.net_bytes_saved > 10_000

    # Every replacement individually beats Figure 1's 4x bar or better
    # amortizes through rule sharing.
    total_gif = sum(r.gif_bytes for r in report.replaced)
    assert total_gif / report.markup_bytes_added > 4.0

    print()
    print(f"CSS replacement: {report.requests_saved} of 42 requests "
          f"removed; {report.image_bytes_removed} B of GIF replaced by "
          f"{report.markup_bytes_added} B of HTML+CSS "
          f"(net {report.net_bytes_saved} B saved)")
