"""Ablation: behaviour at a drop-tail bottleneck.

The paper: "The first few packet exchanges of a new TCP connection are
either too fast, or too slow for that path" — and "TCP's congestion
control algorithms work best when there are enough packets in a
connection that TCP can determine the approximate optimal maximum rate".
This ablation puts a small drop-tail buffer at the WAN bottleneck and
shows both halves of that sentence: HTTP/1.0's 43 short connections
never leave slow start ("too slow for that path", TCP at its least
efficient), while the single pipelined connection probes to the
bottleneck's capacity, takes a handful of congestion drops, recovers
with fast retransmit/NewReno — and still finishes fastest.
"""

import pytest

from repro.core import (FIRST_TIME, HTTP10_MODE, HTTP11_PIPELINED,
                        run_experiment)
from repro.core import runner as runner_mod
from repro.server import APACHE
from repro.simnet import WAN

QUEUE_PACKETS = 10


def run_with_bottleneck(mode, seed=0, queue=QUEUE_PACKETS):
    original = runner_mod.TwoHostNetwork
    created = []

    def patched(*args, **kwargs):
        net = original(*args, **kwargs)
        net.link.queue_limit_packets = queue
        created.append(net)
        return net

    runner_mod.TwoHostNetwork = patched
    try:
        result = run_experiment(mode, FIRST_TIME, environment=WAN,
                                profile=APACHE, seed=seed)
    finally:
        runner_mod.TwoHostNetwork = original
    return result, created[0].link.segments_dropped


@pytest.fixture(scope="module")
def cells():
    return {
        "HTTP/1.0 x4": run_with_bottleneck(HTTP10_MODE),
        "pipelined": run_with_bottleneck(HTTP11_PIPELINED),
    }


def test_congestion(benchmark, cells):
    result, _drops = benchmark(
        lambda: run_with_bottleneck(HTTP11_PIPELINED, seed=1))
    assert result.fetch.complete

    http10, http10_drops = cells["HTTP/1.0 x4"]
    pipelined, pipelined_drops = cells["pipelined"]

    # Both complete correctly despite the congested bottleneck
    # (verified byte-for-byte inside run_experiment).
    # The long connection finds the path's capacity: it experiences
    # congestion losses and recovers...
    assert pipelined_drops >= 1
    assert pipelined.fetch.complete
    # ...while still beating HTTP/1.0, whose 43 short connections never
    # get TCP past slow start.
    assert pipelined.packets < http10.packets / 2
    assert pipelined.elapsed < http10.elapsed

    print()
    print(f"{'client':12s} {'drops':>6s} {'Pa':>5s} {'Sec':>6s}")
    for name, (cell, drops) in cells.items():
        print(f"{name:12s} {drops:6d} {cell.packets:5d} "
              f"{cell.elapsed:6.2f}")
