"""Ablation: the protocol comparison under packet loss.

The paper's traces were taken "when the Internet was particularly
quiet"; its discussion of congestion argues HTTP/1.1 also behaves
better on loaded paths (fewer packets during slow start, longer packet
trains for the congestion-control loop to learn from).  This ablation
re-runs the WAN first-retrieval comparison with 2% packet loss: the
ordering survives, and HTTP/1.0 pays more retransmission stalls because
every object restarts loss recovery from scratch.
"""

import pytest

from repro.core import (FIRST_TIME, HTTP10_MODE, HTTP11_PIPELINED,
                        run_experiment)
from repro.server import APACHE
from repro.simnet import WAN

LOSS = 0.02


def run_lossy(mode, seed=0, loss=LOSS):
    # run_experiment builds the network; inject loss through a wrapper.
    from repro.core import runner as runner_mod
    from repro.simnet.network import TwoHostNetwork

    original = runner_mod.TwoHostNetwork

    def lossy_network(*args, **kwargs):
        net = original(*args, **kwargs)
        net.link.loss_rate = loss
        return net

    runner_mod.TwoHostNetwork = lossy_network
    try:
        return run_experiment(mode, FIRST_TIME, environment=WAN,
                              profile=APACHE, seed=seed)
    finally:
        runner_mod.TwoHostNetwork = original


@pytest.fixture(scope="module")
def cells():
    return {
        "HTTP/1.0 (lossy)": run_lossy(HTTP10_MODE),
        "pipelined (lossy)": run_lossy(HTTP11_PIPELINED),
        "HTTP/1.0 (clean)": run_experiment(HTTP10_MODE, FIRST_TIME,
                                           environment=WAN, profile=APACHE,
                                           seed=0),
        "pipelined (clean)": run_experiment(HTTP11_PIPELINED,
                                            FIRST_TIME, environment=WAN,
                                            profile=APACHE,
                                            seed=0),
    }


def test_lossy_wan(benchmark, cells):
    result = benchmark(lambda: run_lossy(HTTP11_PIPELINED, seed=1))
    assert result.fetch.complete

    # Every byte still arrives intact (verified inside run_experiment).
    lossy_10 = cells["HTTP/1.0 (lossy)"]
    lossy_pl = cells["pipelined (lossy)"]
    clean_10 = cells["HTTP/1.0 (clean)"]
    clean_pl = cells["pipelined (clean)"]

    # Loss costs everyone time...
    assert lossy_pl.elapsed > clean_pl.elapsed
    assert lossy_10.elapsed > clean_10.elapsed
    # ...but the orderings survive.
    assert lossy_pl.packets < lossy_10.packets / 2
    assert lossy_pl.elapsed < lossy_10.elapsed

    print()
    for name, cell in cells.items():
        print(f"{name:20s} Pa={cell.packets:4d} "
              f"Sec={cell.elapsed:6.2f}")
