"""Table 10: Netscape Navigator and Internet Explorer vs Jigsaw, PPP.

The product-browser comparison, including IE 4.0b1's revalidation
blow-up against Jigsaw (no Last-Modified => HEAD checks => keep-alive
dropped per image).
"""

import pytest

from repro.analysis.paperdata import BROWSER_TABLES
from repro.core import (FIRST_TIME, HTTP10_MODE, REVALIDATE,
                        run_experiment)
from repro.core.browsers import BROWSERS, IE_40B1, NETSCAPE_40B5
from repro.server import JIGSAW
from repro.simnet import PPP

SERVER_NAME = "Jigsaw"
PROFILE = JIGSAW


@pytest.fixture(scope="module")
def cells():
    out = {}
    for browser in BROWSERS:
        for scenario in (FIRST_TIME, REVALIDATE):
            out[(browser.name, scenario)] = run_experiment(
                HTTP10_MODE, scenario, environment=PPP, profile=PROFILE,
                seed=0,
                client_config=browser.client_config())
    return out


def test_table10(benchmark, cells):
    result = benchmark(lambda: run_experiment(
        HTTP10_MODE, REVALIDATE, environment=PPP, profile=PROFILE, seed=0,
        client_config=NETSCAPE_40B5.client_config()))
    assert result.fetch.complete

    nn_reval = cells[("Netscape Navigator", REVALIDATE)]
    ie_reval = cells[("Internet Explorer", REVALIDATE)]
    # IE's revalidation against Jigsaw costs several times Navigator's.
    assert ie_reval.packets > 2.0 * nn_reval.packets
    assert ie_reval.payload_bytes > 2.0 * nn_reval.payload_bytes
    # First-time retrieval is comparable between the browsers.
    nn_first = cells[("Netscape Navigator", FIRST_TIME)]
    ie_first = cells[("Internet Explorer", FIRST_TIME)]
    assert 0.8 <= ie_first.packets / nn_first.packets <= 1.3

    print()
    _print_rows(cells, SERVER_NAME)


def _print_rows(cells, server_name):
    paper = BROWSER_TABLES[server_name]
    print(f"{'browser':20s} {'scenario':11s} {'Pa':>6s} {'Pa(p)':>6s} "
          f"{'Bytes':>8s} {'B(p)':>8s} {'Sec':>6s} {'Sec(p)':>6s}")
    for key, cell in cells.items():
        expected = paper[key]
        print(f"{key[0]:20s} {key[1]:11s} {cell.packets:6.0f} "
              f"{expected.packets:6.1f} {cell.payload_bytes:8.0f} "
              f"{expected.payload_bytes:8.0f} {cell.elapsed:6.1f} "
              f"{expected.seconds:6.1f}")
