"""Future work: quantify the server CPU savings of HTTP/1.1.

"We believe the CPU time savings of HTTP/1.1 is very substantial due to
the great reduction in TCP open and close and savings in packet
overhead, and could now be quantified for Apache (currently the most
popular Web server on the Internet)."  Quantified here: total server
CPU-busy time per page fetch, for each protocol mode, on the Apache
profile.
"""

import pytest

from repro.core import (ALL_MODES, FIRST_TIME, HTTP10_MODE,
                        HTTP11_PIPELINED, REVALIDATE, run_experiment)
from repro.server import APACHE
from repro.simnet import LAN


@pytest.fixture(scope="module")
def cells():
    out = {}
    for mode in ALL_MODES:
        for scenario in (FIRST_TIME, REVALIDATE):
            out[(mode.name, scenario)] = run_experiment(
                mode, scenario, environment=LAN, profile=APACHE, seed=0)
    return out


def test_server_cpu(benchmark, cells):
    result = benchmark(lambda: run_experiment(
        HTTP11_PIPELINED, REVALIDATE, environment=LAN, profile=APACHE, seed=1))
    assert result.fetch.complete

    http10_f = cells[("HTTP/1.0", FIRST_TIME)]
    pipelined_f = cells[("HTTP/1.1 Pipelined", FIRST_TIME)]
    http10_r = cells[("HTTP/1.0", REVALIDATE)]
    pipelined_r = cells[("HTTP/1.1 Pipelined", REVALIDATE)]

    # The per-connection overhead (fork/accept, 43x vs 1x) is the
    # "very substantial" saving the paper predicts.
    saved_f = 1 - pipelined_f.server_cpu_seconds / \
        http10_f.server_cpu_seconds
    saved_r = 1 - pipelined_r.server_cpu_seconds / \
        http10_r.server_cpu_seconds
    assert saved_f > 0.25
    assert saved_r > 0.4     # revalidation is dominated by per-conn cost
    # Persistent and pipelined cost the server the same CPU: pipelining
    # changes timing, not work.
    persistent_f = cells[("HTTP/1.1", FIRST_TIME)]
    assert abs(persistent_f.server_cpu_seconds
               - pipelined_f.server_cpu_seconds) < 0.005

    print()
    print(f"{'mode':34s} {'scenario':11s} {'server CPU (ms)':>16s}")
    for (mode, scenario), cell in cells.items():
        print(f"{mode:34s} {scenario:11s} "
              f"{cell.server_cpu_seconds * 1000:16.1f}")
    print(f"\nHTTP/1.1 pipelined saves {saved_f:.0%} server CPU on first "
          f"retrieval, {saved_r:.0%} on revalidation (vs HTTP/1.0).")
