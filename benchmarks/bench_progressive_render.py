"""Future work: progressive rendering — PNG's time-to-render edge.

"PNG also provides time to render benefits relative to GIF."  This
bench quantifies the claim on the Microscape hero image: the byte
fraction needed before 90 % of the display area can be painted (at any
resolution), for baseline and interlaced GIF and PNG.
"""

import pytest

from repro.content import build_microscape_site, encode_gif, encode_png
from repro.content.progressive import (bytes_for_coverage,
                                       gif_area_coverage,
                                       png_area_coverage)


@pytest.fixture(scope="module")
def hero():
    site = build_microscape_site()
    return next(o for o in site.image_objects
                if o.url.endswith("hero.gif")).image


@pytest.fixture(scope="module")
def variants(hero):
    return {
        "GIF baseline": (encode_gif(hero), gif_area_coverage),
        "GIF interlaced": (encode_gif(hero, interlace=True),
                           gif_area_coverage),
        "PNG baseline": (encode_png(hero), png_area_coverage),
        "PNG Adam7": (encode_png(hero, interlace=True),
                      png_area_coverage),
    }


def test_progressive_render(benchmark, variants):
    gif_i_wire, fn = variants["GIF interlaced"]
    result = benchmark(bytes_for_coverage, gif_i_wire, fn, 0.9)
    assert 0 < result <= 1

    needed = {name: bytes_for_coverage(wire, fn, 0.9)
              for name, (wire, fn) in variants.items()}

    # Baselines need most of the file; interlacing front-loads it.
    assert needed["GIF baseline"] > 0.8
    assert needed["PNG baseline"] > 0.8
    assert needed["GIF interlaced"] < 0.35
    # And PNG's Adam7 beats GIF's 4-pass scheme (the paper's claim).
    assert needed["PNG Adam7"] < needed["GIF interlaced"]

    print()
    print(f"{'format':16s} {'size (B)':>9s} {'bytes for 90% area':>20s}")
    for name, (wire, _fn) in variants.items():
        print(f"{name:16s} {len(wire):9d} {needed[name]:19.0%}")
