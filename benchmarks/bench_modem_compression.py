"""Section 8.2.1: deflate vs modem (V.42bis) compression over 28.8k.

A single GET of the Microscape HTML, uncompressed versus
``Content-Encoding: deflate``, through the V.42bis modem pair.  The
paper's point: ~68% of the packets and ~64% of the time saved — deflate
at the content layer beats the modem's own compression.
"""

import pytest

from repro.analysis.paperdata import MODEM_TABLE
from repro.client.robot import ClientConfig
from repro.core import FIRST_TIME, HTTP11_PERSISTENT, run_experiment
from repro.server import APACHE, JIGSAW
from repro.simnet import PPP

PROFILES = {"Jigsaw": JIGSAW, "Apache": APACHE}


def fetch_html_only(profile, compressed, seed=0):
    config = ClientConfig(accept_deflate=compressed, follow_images=False)
    return run_experiment(HTTP11_PERSISTENT, FIRST_TIME, environment=PPP,
                          profile=profile,
                          seed=seed, client_config=config, verify=False)


@pytest.fixture(scope="module")
def cells():
    return {
        (name, variant): fetch_html_only(profile, variant == "compressed")
        for name, profile in PROFILES.items()
        for variant in ("uncompressed", "compressed")
    }


def test_modem_compression(benchmark, cells):
    result = benchmark(lambda: fetch_html_only(APACHE, True))
    assert result.fetch.complete

    print()
    print(f"{'server':7s} {'variant':13s} {'Pa':>5s} {'Pa(p)':>5s} "
          f"{'Sec':>6s} {'Sec(p)':>6s}")
    for (name, variant), cell in cells.items():
        paper_pa, paper_sec = MODEM_TABLE[(name, variant)]
        print(f"{name:7s} {variant:13s} {cell.packets:5.0f} "
              f"{paper_pa:5.0f} {cell.elapsed:6.2f} {paper_sec:6.2f}")

    for name in PROFILES:
        plain = cells[(name, "uncompressed")]
        deflated = cells[(name, "compressed")]
        packet_saving = 1 - deflated.packets / plain.packets
        time_saving = 1 - deflated.elapsed / plain.elapsed
        # Paper: 68.7% packets, 64.4-64.5% elapsed time.
        assert 0.55 <= packet_saving <= 0.78
        assert 0.50 <= time_saving <= 0.75
