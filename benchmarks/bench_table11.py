"""Table 11: Netscape Navigator and Internet Explorer vs Apache, PPP.

Against Apache (which sends Last-Modified), both browsers validate
cleanly; the table's story is browser header verbosity versus the
robot.
"""

import pytest

from repro.analysis.paperdata import BROWSER_TABLES
from repro.core import (FIRST_TIME, HTTP10_MODE, REVALIDATE,
                        run_experiment)
from repro.core.browsers import BROWSERS, NETSCAPE_40B5
from repro.server import APACHE
from repro.simnet import PPP

SERVER_NAME = "Apache"
PROFILE = APACHE


@pytest.fixture(scope="module")
def cells():
    out = {}
    for browser in BROWSERS:
        for scenario in (FIRST_TIME, REVALIDATE):
            out[(browser.name, scenario)] = run_experiment(
                HTTP10_MODE, scenario, environment=PPP, profile=PROFILE,
                seed=0,
                client_config=browser.client_config())
    return out


def test_table11(benchmark, cells):
    result = benchmark(lambda: run_experiment(
        HTTP10_MODE, REVALIDATE, environment=PPP, profile=PROFILE, seed=0,
        client_config=NETSCAPE_40B5.client_config()))
    assert result.fetch.complete

    # Both browsers revalidate successfully against Apache: mostly 304s,
    # packet counts within ~30% of each other (no IE blow-up here).
    nn_reval = cells[("Netscape Navigator", REVALIDATE)]
    ie_reval = cells[("Internet Explorer", REVALIDATE)]
    assert nn_reval.statuses.get(304, 0) == 43
    assert ie_reval.statuses.get(304, 0) == 43
    assert 0.7 <= ie_reval.packets / nn_reval.packets <= 1.4

    print()
    paper = BROWSER_TABLES[SERVER_NAME]
    print(f"{'browser':20s} {'scenario':11s} {'Pa':>6s} {'Pa(p)':>6s} "
          f"{'Bytes':>8s} {'B(p)':>8s} {'Sec':>6s} {'Sec(p)':>6s}")
    for key, cell in cells.items():
        expected = paper[key]
        print(f"{key[0]:20s} {key[1]:11s} {cell.packets:6.0f} "
              f"{expected.packets:6.1f} {cell.payload_bytes:8.0f} "
              f"{expected.payload_bytes:8.0f} {cell.elapsed:6.1f} "
              f"{expected.seconds:6.1f}")
